type kind =
  | Multicast
  | Multicast_bits
  | Unicast
  | Unicast_bits
  | Removal
  | Injection
  | Injection_bits
  | Corruption

let all_kinds =
  [ Multicast; Multicast_bits; Unicast; Unicast_bits; Removal; Injection;
    Injection_bits; Corruption ]

let n_kinds = 8

let kind_index = function
  | Multicast -> 0
  | Multicast_bits -> 1
  | Unicast -> 2
  | Unicast_bits -> 3
  | Removal -> 4
  | Injection -> 5
  | Injection_bits -> 6
  | Corruption -> 7

let kind_name = function
  | Multicast -> "multicasts"
  | Multicast_bits -> "multicast_bits"
  | Unicast -> "unicasts"
  | Unicast_bits -> "unicast_bits"
  | Removal -> "removals"
  | Injection -> "injections"
  | Injection_bits -> "injection_bits"
  | Corruption -> "corruptions"

(* Rounds are stored at index [round + 1] so that setup-time events
   (round -1, matching the trace convention) have a bucket. Buckets are
   sparse hash tables keyed by [node * n_kinds + kind]: committee-based
   protocols have only O(λ) speakers per round, so dense n-wide arrays
   would waste most of their space. *)
type t = {
  n : int;
  mutable buckets : (int, int) Hashtbl.t option array;
  mutable used : int;  (* highest occupied index + 1 *)
}

let create ~n =
  if n <= 0 then invalid_arg "Series.create: n must be positive";
  { n; buckets = Array.make 8 None; used = 0 }

let n_nodes t = t.n

let bucket t idx =
  if idx >= Array.length t.buckets then begin
    let cap = max (idx + 1) (2 * Array.length t.buckets) in
    let grown = Array.make cap None in
    Array.blit t.buckets 0 grown 0 (Array.length t.buckets);
    t.buckets <- grown
  end;
  if idx >= t.used then t.used <- idx + 1;
  match t.buckets.(idx) with
  | Some b -> b
  | None ->
      let b = Hashtbl.create 32 in
      t.buckets.(idx) <- Some b;
      b

let record ?(by = 1) t ~round ~node kind =
  if round < -1 then invalid_arg "Series.record: round < -1";
  if node < 0 || node >= t.n then invalid_arg "Series.record: node out of range";
  if by <> 0 then begin
    let b = bucket t (round + 1) in
    let key = (node * n_kinds) + kind_index kind in
    let prev = match Hashtbl.find_opt b key with Some v -> v | None -> 0 in
    Hashtbl.replace b key (prev + by)
  end

let max_round t = t.used - 2

let fold t f acc =
  let acc = ref acc in
  for idx = 0 to t.used - 1 do
    match t.buckets.(idx) with
    | None -> ()
    | Some b ->
        (* Sort within the bucket for deterministic iteration order. *)
        Hashtbl.fold (fun key v l -> (key, v) :: l) b []
        |> List.sort (fun (k1, v1) (k2, v2) ->
               match Int.compare k1 k2 with 0 -> Int.compare v1 v2 | c -> c)
        |> List.iter (fun (key, v) ->
               let node = key / n_kinds in
               let kind = List.nth all_kinds (key mod n_kinds) in
               acc := f !acc ~round:(idx - 1) ~node kind v)
  done;
  !acc

let total t kind =
  fold t
    (fun acc ~round:_ ~node:_ k v -> if k = kind then acc + v else acc)
    0

let round_total t ~round kind =
  if round + 1 < 0 || round + 1 >= t.used then 0
  else
    match t.buckets.(round + 1) with
    | None -> 0
    | Some b ->
        let ki = kind_index kind in
        Hashtbl.fold
          (fun key v acc -> if key mod n_kinds = ki then acc + v else acc)
          b 0

let node_total t ~node kind =
  fold t
    (fun acc ~round:_ ~node:i k v ->
      if i = node && k = kind then acc + v else acc)
    0

(* Grouped [(round, [(node, counts array)])] view, rounds and nodes
   ascending, used by both exporters. *)
let cells t =
  let rounds = ref [] in
  for idx = t.used - 1 downto 0 do
    match t.buckets.(idx) with
    | None -> ()
    | Some b when Hashtbl.length b > 0 ->
        let per_node = Hashtbl.create 16 in
        Hashtbl.iter
          (fun key v ->
            let node = key / n_kinds in
            let counts =
              match Hashtbl.find_opt per_node node with
              | Some c -> c
              | None ->
                  let c = Array.make n_kinds 0 in
                  Hashtbl.add per_node node c;
                  c
            in
            counts.(key mod n_kinds) <- counts.(key mod n_kinds) + v)
          b;
        let nodes =
          Hashtbl.fold (fun node c l -> (node, c) :: l) per_node []
          |> List.sort (fun (n1, _) (n2, _) -> Int.compare n1 n2)
        in
        rounds := (idx - 1, nodes) :: !rounds
    | Some _ -> ()
  done;
  !rounds

let to_json t =
  let round_json (round, nodes) =
    Json.Obj
      [ ("round", Json.Int round);
        ( "nodes",
          Json.List
            (List.map
               (fun (node, counts) ->
                 Json.Obj
                   (("node", Json.Int node)
                   :: List.filter_map
                        (fun k ->
                          let v = counts.(kind_index k) in
                          if v = 0 then None
                          else Some (kind_name k, Json.Int v))
                        all_kinds))
               nodes) ) ]
  in
  Json.Obj
    [ ("n", Json.Int t.n);
      ( "totals",
        Json.Obj
          (List.map (fun k -> (kind_name k, Json.Int (total t k))) all_kinds) );
      ("rounds", Json.List (List.map round_json (cells t))) ]

let csv_header = "round" :: "node" :: List.map kind_name all_kinds

let to_csv t =
  let rows =
    List.concat_map
      (fun (round, nodes) ->
        List.map
          (fun (node, counts) ->
            string_of_int round :: string_of_int node
            :: List.map
                 (fun k -> string_of_int counts.(kind_index k))
                 all_kinds)
          nodes)
      (cells t)
  in
  Csv.to_string ~header:csv_header rows
