(** The [Fmine] ideal mining functionality (the paper's Figure 1 /
    Appendix A.3).

    [Fmine] is a trusted party for {e eligibility election}: when node [i]
    attempts to "mine" a ticket for a message [m], [Fmine] flips a coin
    with success probability [P(m)] — memoized, so repeating the attempt
    returns the same answer — and later anyone can [verify] that [i]
    mined [m] successfully.

    Secrecy (the crucial property for adaptive security): the coin for
    [(m, i)] does not exist until [i] itself calls {!mine}; {!verify}
    returns [false] for attempts never made, and the functionality gives
    the adversary no way to query an honest node's coin. In this
    implementation coins are derived from a hidden internal key, so the
    whole execution stays deterministic in the engine seed while remaining
    unpredictable from public data.

    The paper first analyzes all protocols in this [Fmine]-hybrid world
    (Appendix C) and then compiles [Fmine] away using an adaptively secure
    VRF (Appendix D) — see {!Compiler}. *)

type t

val create : Bacrypto.Rng.t -> t
(** [create rng] instantiates the functionality with a hidden coin key
    drawn from [rng]. The probability function [P] is supplied per-call
    (protocols derive it from the message type), which is equivalent to
    Figure 1's fixed [P] as long as callers are consistent — {!mine}
    enforces consistency by memoizing the probability together with the
    coin. *)

val mine : t -> node:int -> msg:string -> p:float -> bool
(** [mine t ~node ~msg ~p] is node [node]'s mining attempt for [msg] with
    success probability [p]. Memoized: later attempts return the first
    answer. @raise Invalid_argument if the same [(node, msg)] is re-mined
    with a different [p] (a protocol bug). *)

val sample : t -> node:int -> msg:string -> p:float -> bool
(** Same coin as {!mine} — derived from the same hidden PRF, so the two
    can never disagree on an outcome — but a {e losing} attempt is not
    memoized, only tallied: the sparse engine path probes every active
    node each round, and recording the losers would grow the table by
    O(n) per round (the heap growth the [ba_obs mem] flatness gate
    forbids). Winners are recorded exactly as {!mine} records them, so
    credential verification is unaffected; this is sound because
    {!verify} answers [false] for absent entries and a losing attempt
    yields no credential anyone could present. Caveat: the
    different-[p] consistency check only fires against recorded
    entries, and a later {!mine} of a key whose losing [sample] was
    already tallied re-counts it in {!attempts} (reachable only by an
    adversary re-mining an honestly sampled key). *)

val verify : t -> node:int -> msg:string -> bool
(** [verify t ~node ~msg] is [true] iff [node] has called {!mine} on
    [msg] {e and} the attempt succeeded (Figure 1: unattempted mines
    verify as 0). *)

val verify_batch : t -> (int * string) list -> bool list
(** [verify_batch t [(node, msg); ...] = List.map (fun (node, msg) ->
    verify t ~node ~msg) ...], under a single lock acquisition. *)

val attempts : t -> int
(** Total number of distinct mining attempts so far — memoized {!mine}
    attempts plus losing {!sample} probes (used by tests and by the
    stochastic-lemma experiment). *)

val successes : t -> int
(** Number of successful attempts so far. *)

val dump : t -> ((int * string) * bool) list
(** All recorded attempts as [((node, msg), outcome)] — post-hoc
    inspection for the stochastic-lemma experiments (E7). Order is
    unspecified. *)

val successes_for : t -> prefix:string -> int
(** Number of successful attempts whose mining string starts with
    [prefix] (e.g. ["shm:Vote:3:1"] counts that committee's size). *)
