type record = { outcome : bool; prob : float }

type t = {
  coin_key : Bacrypto.Prf.cached; (* hidden; drives the Bernoulli coins *)
  table : (int * string, record) Hashtbl.t;
  mutable successes : int;
  mutable sampled_losses : int;
      (* losing [sample] attempts, which are counted but NOT memoized:
         the sparse engine path probes every active node per round, and
         memoizing the losers would grow the table by O(n) per round —
         the exact heap growth the memory-flatness gate forbids *)
  (* When the engine shards a round across domains, concurrent honest
     steps mine and verify against one shared functionality. The lock
     covers every table access; [mine] holds it across coin derivation
     too so [successes] counts each distinct attempt exactly once.
     Contention is negligible: within a round, nodes mine distinct
     (node, msg) keys. *)
  lock : Mutex.t;
}

let create rng =
  { coin_key = Bacrypto.Prf.cache (Bacrypto.Prf.gen rng);
    table = Hashtbl.create 1024;
    successes = 0;
    sampled_losses = 0;
    lock = Mutex.create () }

let p_mine = Baobs.Probe.register "fmine.mine"

let mine_unprobed t ~node ~msg ~p =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.table (node, msg) with
      | Some r ->
          if r.prob <> p then
            invalid_arg "Fmine.mine: same (node, msg) mined with a different p";
          r.outcome
      | None ->
          (* Same bytes as [Printf.sprintf "%d|%s" node msg], minus the
             format-string interpreter on the hot mining path. *)
          let rho =
            Bacrypto.Prf.eval_cached t.coin_key (string_of_int node ^ "|" ^ msg)
          in
          let outcome = Bacrypto.Prf.below_difficulty rho ~p in
          Hashtbl.replace t.table (node, msg) { outcome; prob = p };
          if outcome then t.successes <- t.successes + 1;
          outcome)

let mine t ~node ~msg ~p =
  let t0 = Baobs.Probe.start () in
  let outcome = mine_unprobed t ~node ~msg ~p in
  Baobs.Probe.stop p_mine t0;
  outcome

(* Identical coin to [mine] (same PRF, so [sample] and [mine] can never
   disagree on an outcome), but only {e winners} enter the table. Sound
   because [verify] answers [false] for absent entries and a losing
   attempt never yields a credential anyone could present — exactly
   Figure 1's "unattempted mines verify as 0" read. Losers are tallied
   in [sampled_losses] so [attempts] still counts every coin flipped. *)
let sample t ~node ~msg ~p =
  let t0 = Baobs.Probe.start () in
  let outcome =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.table (node, msg) with
        | Some r ->
            if r.prob <> p then
              invalid_arg
                "Fmine.sample: same (node, msg) mined with a different p";
            r.outcome
        | None ->
            let rho =
              Bacrypto.Prf.eval_cached t.coin_key
                (string_of_int node ^ "|" ^ msg)
            in
            let outcome = Bacrypto.Prf.below_difficulty rho ~p in
            if outcome then begin
              Hashtbl.replace t.table (node, msg) { outcome; prob = p };
              t.successes <- t.successes + 1
            end
            else t.sampled_losses <- t.sampled_losses + 1;
            outcome)
  in
  Baobs.Probe.stop p_mine t0;
  outcome

let verify_unlocked t ~node ~msg =
  match Hashtbl.find_opt t.table (node, msg) with
  | Some r -> r.outcome
  | None -> false

let verify t ~node ~msg =
  Mutex.protect t.lock (fun () -> verify_unlocked t ~node ~msg)

let verify_batch t entries =
  match entries with
  | [] -> []
  | entries ->
      Mutex.protect t.lock (fun () ->
          List.map (fun (node, msg) -> verify_unlocked t ~node ~msg) entries)

let attempts t =
  Mutex.protect t.lock (fun () -> Hashtbl.length t.table + t.sampled_losses)

let successes t = Mutex.protect t.lock (fun () -> t.successes)

let dump t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun key r acc -> (key, r.outcome) :: acc) t.table [])

let successes_for t ~prefix =
  let plen = String.length prefix in
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold
        (fun (_, msg) r acc ->
          if
            r.outcome && String.length msg >= plen
            && String.equal (String.sub msg 0 plen) prefix
          then acc + 1
          else acc)
        t.table 0)
