type record = { outcome : bool; prob : float }

type t = {
  coin_key : Bacrypto.Prf.cached; (* hidden; drives the Bernoulli coins *)
  table : (int * string, record) Hashtbl.t;
  mutable successes : int;
  (* When the engine shards a round across domains, concurrent honest
     steps mine and verify against one shared functionality. The lock
     covers every table access; [mine] holds it across coin derivation
     too so [successes] counts each distinct attempt exactly once.
     Contention is negligible: within a round, nodes mine distinct
     (node, msg) keys. *)
  lock : Mutex.t;
}

let create rng =
  { coin_key = Bacrypto.Prf.cache (Bacrypto.Prf.gen rng);
    table = Hashtbl.create 1024;
    successes = 0;
    lock = Mutex.create () }

let p_mine = Baobs.Probe.register "fmine.mine"

let mine_unprobed t ~node ~msg ~p =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.table (node, msg) with
      | Some r ->
          if r.prob <> p then
            invalid_arg "Fmine.mine: same (node, msg) mined with a different p";
          r.outcome
      | None ->
          (* Same bytes as [Printf.sprintf "%d|%s" node msg], minus the
             format-string interpreter on the hot mining path. *)
          let rho =
            Bacrypto.Prf.eval_cached t.coin_key (string_of_int node ^ "|" ^ msg)
          in
          let outcome = Bacrypto.Prf.below_difficulty rho ~p in
          Hashtbl.replace t.table (node, msg) { outcome; prob = p };
          if outcome then t.successes <- t.successes + 1;
          outcome)

let mine t ~node ~msg ~p =
  let t0 = Baobs.Probe.start () in
  let outcome = mine_unprobed t ~node ~msg ~p in
  Baobs.Probe.stop p_mine t0;
  outcome

let verify_unlocked t ~node ~msg =
  match Hashtbl.find_opt t.table (node, msg) with
  | Some r -> r.outcome
  | None -> false

let verify t ~node ~msg =
  Mutex.protect t.lock (fun () -> verify_unlocked t ~node ~msg)

let verify_batch t entries =
  match entries with
  | [] -> []
  | entries ->
      Mutex.protect t.lock (fun () ->
          List.map (fun (node, msg) -> verify_unlocked t ~node ~msg) entries)

let attempts t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)

let successes t = Mutex.protect t.lock (fun () -> t.successes)

let dump t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun key r acc -> (key, r.outcome) :: acc) t.table [])

let successes_for t ~prefix =
  let plen = String.length prefix in
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold
        (fun (_, msg) r acc ->
          if
            r.outcome && String.length msg >= plen
            && String.equal (String.sub msg 0 plen) prefix
          then acc + 1
          else acc)
        t.table 0)
