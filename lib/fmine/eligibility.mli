(** The eligibility-election interface shared by the [Fmine]-hybrid and
    real (VRF-compiled) worlds.

    Protocols never talk to {!Fmine} or {!Bacrypto.Vrf} directly; they
    "conditionally multicast" through this interface (§3.2: a node checks
    whether it is eligible to send a message and, if so, attaches a
    credential everyone can verify). Swapping the implementation —
    {!hybrid} vs {!Compiler.real_world} — reruns the identical protocol
    code in the two worlds, which is exactly the compilation claim of
    Appendix D that experiment E9 tests. *)

type credential =
  | Ideal_ticket
      (** Hybrid world: [Fmine] itself vouches; nothing travels on the
          wire beyond the claim, and {!verify} consults the
          functionality. *)
  | Vrf_credential of Bacrypto.Vrf.evaluation
      (** Real world: the VRF output and its NIZK proof, carried by the
          message (the [(ρ, π)] terms of Appendix D.4). *)

type t = {
  world : [ `Hybrid | `Real ];
  mine : node:int -> msg:string -> p:float -> credential option;
      (** One mining attempt for [msg] at difficulty [p]: [Some c] iff
          eligible. Requires the caller to {e be} node [node] (honest
          code) or to have corrupted it (the engine hands the adversary
          corrupt nodes' keys); attack implementations respect this. *)
  sample : node:int -> msg:string -> p:float -> credential option;
      (** Outcome-identical to {!field-mine} (same coin), but losing
          attempts leave no per-attempt record behind — the
          heap-flatness-preserving probe the sparse engine path uses to
          test every active node's eligibility each round
          ({!Fmine.sample}). In the real world mining is already
          stateless, so this {e is} [mine]. *)
  verify : node:int -> msg:string -> p:float -> credential -> bool;
      (** Check an announced eligibility. *)
  verify_many : msg:string -> p:float -> (int * credential) list -> bool list;
      (** [verify_many ~msg ~p [(node, c); ...]] checks many announced
          eligibilities for the {e same} mining string and difficulty —
          the quorum-certificate shape. Result-equivalent to mapping
          {!field-verify} over the entries, but amortized: one batched
          crypto sweep in the real world, one functionality lookup pass
          in the hybrid world. *)
  credential_bits : credential -> int;
      (** Wire size of the credential (0 in the hybrid world). *)
}

val hybrid : Fmine.t -> t
(** The [Fmine]-hybrid world. *)

val mining_msg : tag:string -> iter:int -> bit:bool option -> string
(** Canonical encoding of the mining string for a message type: [tag]
    (e.g. ["Vote"]), iteration, and — when eligibility is
    {e bit-specific} (the paper's key idea) — the bit. Pass [bit:None]
    for the bit-{e agnostic} ablation of the §3.3 Remark or for
    bit-independent types like [Terminate]. *)
