open Bacrypto

let real_world pki =
  let params = Pki.params pki in
  { Eligibility.world = `Real;
    mine =
      (fun ~node ~msg ~p ->
        let ev = Vrf.eval params (Pki.secret_key pki node) msg in
        if Prf.below_difficulty ev.Vrf.rho ~p then
          Some (Eligibility.Vrf_credential ev)
        else None);
    verify =
      (fun ~node ~msg ~p -> function
        | Eligibility.Ideal_ticket -> false
        | Eligibility.Vrf_credential ev ->
            Prf.below_difficulty ev.Vrf.rho ~p
            && Vrf.verify params (Pki.public_key pki node) msg ev);
    credential_bits =
      (function
        | Eligibility.Ideal_ticket -> 0
        | Eligibility.Vrf_credential ev -> Vrf.evaluation_bits ev) }

let hybrid_from_pki pki =
  (* Same Bernoulli lottery as the real world (PRF of the node's actual
     key), but credentials are ideal tickets and verification consults the
     functionality's own mined-set table, as in Figure 1. *)
  let mined : (int * string, bool) Hashtbl.t = Hashtbl.create 1024 in
  { Eligibility.world = `Hybrid;
    mine =
      (fun ~node ~msg ~p ->
        let outcome =
          match Hashtbl.find_opt mined (node, msg) with
          | Some o -> o
          | None ->
              let sk = Pki.secret_key pki node in
              let rho = Prf.eval_cached sk.Vrf.prf_cached msg in
              let o = Prf.below_difficulty rho ~p in
              Hashtbl.replace mined (node, msg) o;
              o
        in
        if outcome then Some Eligibility.Ideal_ticket else None);
    verify =
      (fun ~node ~msg ~p:_ -> function
        | Eligibility.Ideal_ticket ->
            (match Hashtbl.find_opt mined (node, msg) with
            | Some o -> o
            | None -> false)
        | Eligibility.Vrf_credential _ -> false);
    credential_bits = (fun _ -> 0) }

let paired pki = (hybrid_from_pki pki, real_world pki)
