open Bacrypto

let real_world pki =
  let params = Pki.params pki in
  let check_one ~msg ~p node ev =
    Prf.below_difficulty ev.Vrf.rho ~p
    && Vrf.verify params (Pki.public_key pki node) msg ev
  in
  let mine ~node ~msg ~p =
    let ev = Vrf.eval params (Pki.secret_key pki node) msg in
    if Prf.below_difficulty ev.Vrf.rho ~p then
      Some (Eligibility.Vrf_credential ev)
    else None
  in
  { Eligibility.world = `Real;
    mine;
    (* VRF mining keeps no per-attempt state, so sampling is mining. *)
    sample = mine;
    verify =
      (fun ~node ~msg ~p -> function
        | Eligibility.Ideal_ticket -> false
        | Eligibility.Vrf_credential ev -> check_one ~msg ~p node ev);
    verify_many =
      (fun ~msg ~p entries ->
        (* Difficulty is a pure comparison; only entries that pass it pay
           a proof check, and those run as one amortized NIZK sweep. *)
        let tagged =
          List.map
            (fun (node, cred) ->
              match cred with
              | Eligibility.Ideal_ticket -> `No
              | Eligibility.Vrf_credential ev ->
                  if Prf.below_difficulty ev.Vrf.rho ~p then
                    `Check (Pki.public_key pki node, msg, ev)
                  else `No)
            entries
        in
        let checks =
          List.filter_map (function `Check c -> Some c | `No -> None) tagged
        in
        let oks = ref (Vrf.verify_batch params checks) in
        List.map
          (function
            | `No -> false
            | `Check _ -> (
                match !oks with
                | ok :: rest ->
                    oks := rest;
                    ok
                | [] -> assert false))
          tagged);
    credential_bits =
      (function
        | Eligibility.Ideal_ticket -> 0
        | Eligibility.Vrf_credential ev -> Vrf.evaluation_bits ev) }

let hybrid_from_pki pki =
  (* Same Bernoulli lottery as the real world (PRF of the node's actual
     key), but credentials are ideal tickets and verification consults the
     functionality's own mined-set table, as in Figure 1. The lock makes
     the table safe under the engine's sharded step phase (same discipline
     as {!Fmine}). *)
  let mined : (int * string, bool) Hashtbl.t = Hashtbl.create 1024 in
  let lock = Mutex.create () in
  let lookup node msg =
    match Hashtbl.find_opt mined (node, msg) with Some o -> o | None -> false
  in
  let coin node msg p =
    let sk = Pki.secret_key pki node in
    let rho = Prf.eval_cached sk.Vrf.prf_cached msg in
    Prf.below_difficulty rho ~p
  in
  { Eligibility.world = `Hybrid;
    mine =
      (fun ~node ~msg ~p ->
        let outcome =
          Mutex.protect lock (fun () ->
              match Hashtbl.find_opt mined (node, msg) with
              | Some o -> o
              | None ->
                  let o = coin node msg p in
                  Hashtbl.replace mined (node, msg) o;
                  o)
        in
        if outcome then Some Eligibility.Ideal_ticket else None);
    sample =
      (fun ~node ~msg ~p ->
        (* winner-only memoization, as in [Fmine.sample] *)
        let outcome =
          Mutex.protect lock (fun () ->
              match Hashtbl.find_opt mined (node, msg) with
              | Some o -> o
              | None ->
                  let o = coin node msg p in
                  if o then Hashtbl.replace mined (node, msg) o;
                  o)
        in
        if outcome then Some Eligibility.Ideal_ticket else None);
    verify =
      (fun ~node ~msg ~p:_ -> function
        | Eligibility.Ideal_ticket ->
            Mutex.protect lock (fun () -> lookup node msg)
        | Eligibility.Vrf_credential _ -> false);
    verify_many =
      (fun ~msg ~p:_ entries ->
        Mutex.protect lock (fun () ->
            List.map
              (fun (node, cred) ->
                match cred with
                | Eligibility.Ideal_ticket -> lookup node msg
                | Eligibility.Vrf_credential _ -> false)
              entries));
    credential_bits = (fun _ -> 0) }

let paired pki = (hybrid_from_pki pki, real_world pki)
