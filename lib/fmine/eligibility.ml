type credential =
  | Ideal_ticket
  | Vrf_credential of Bacrypto.Vrf.evaluation

type t = {
  world : [ `Hybrid | `Real ];
  mine : node:int -> msg:string -> p:float -> credential option;
  sample : node:int -> msg:string -> p:float -> credential option;
  verify : node:int -> msg:string -> p:float -> credential -> bool;
  verify_many : msg:string -> p:float -> (int * credential) list -> bool list;
  credential_bits : credential -> int;
}

let hybrid fmine =
  { world = `Hybrid;
    mine =
      (fun ~node ~msg ~p ->
        if Fmine.mine fmine ~node ~msg ~p then Some Ideal_ticket else None);
    sample =
      (fun ~node ~msg ~p ->
        if Fmine.sample fmine ~node ~msg ~p then Some Ideal_ticket else None);
    verify =
      (fun ~node ~msg ~p:_ -> function
        | Ideal_ticket -> Fmine.verify fmine ~node ~msg
        | Vrf_credential _ -> false);
    verify_many =
      (fun ~msg ~p:_ entries ->
        (* One lock acquisition for the whole quorum check; the lookup for
           a [Vrf_credential] entry is discarded (read-only, harmless). *)
        let oks =
          Fmine.verify_batch fmine
            (List.map (fun (node, _) -> (node, msg)) entries)
        in
        List.map2
          (fun (_, cred) ok ->
            match cred with Ideal_ticket -> ok | Vrf_credential _ -> false)
          entries oks);
    credential_bits =
      (function Ideal_ticket -> 0 | Vrf_credential ev -> Bacrypto.Vrf.evaluation_bits ev) }

let mining_msg ~tag ~iter ~bit =
  match bit with
  | Some b -> Printf.sprintf "%s:%d:%d" tag iter (if b then 1 else 0)
  | None -> Printf.sprintf "%s:%d" tag iter
