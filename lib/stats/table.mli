(** Plain-text table rendering for the experiment harness. Every
    experiment prints one of these; EXPERIMENTS.md embeds the output. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row arity differs from the columns. *)

val add_note : t -> string -> unit
(** Free-form footnote printed under the table. *)

val render : t -> string

val print : t -> unit
(** [render] to stdout. *)

val fmt_float : float -> string
(** Compact float formatting used across experiment tables. *)

val fmt_int : int -> string
(** Thousands-separated integer. *)

val title : t -> string

val columns : t -> string list

val rows : t -> string list list
(** Rows in insertion order (for exporters). *)

val notes : t -> string list
