type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;
  mutable notes : string list;
}

let create ~title ~columns = { title; columns; rows = []; notes = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let add_note t note = t.notes <- note :: t.notes

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length col) rows)
      t.columns
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line = String.concat "-+-" (List.map (fun w -> String.make w '-') widths) in
  let render_row cells =
    String.concat " | " (List.map2 pad cells widths)
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "== %s ==\n" t.title);
  Buffer.add_string buf (render_row t.columns ^ "\n");
  Buffer.add_string buf (line ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
  List.iter
    (fun note -> Buffer.add_string buf ("  note: " ^ note ^ "\n"))
    (List.rev t.notes);
  Buffer.contents buf

let print t = print_string (render t)

let fmt_float v =
  if Float.is_integer v && abs_float v < 1e9 then
    Printf.sprintf "%.0f" v
  else if abs_float v >= 1000.0 then Printf.sprintf "%.0f" v
  else if abs_float v >= 10.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.3f" v

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let title t = t.title

let columns t = t.columns

let rows t = List.rev t.rows

let notes t = List.rev t.notes
