type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.quantile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Summary.quantile: q outside [0,1]";
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let of_list samples =
  let n = List.length samples in
  if n = 0 then invalid_arg "Summary.of_list: empty";
  let arr = Array.of_list samples in
  Array.sort Float.compare arr;
  let fn = float_of_int n in
  let mean = List.fold_left ( +. ) 0.0 samples /. fn in
  let var =
    if n = 1 then 0.0
    else
      List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 samples
      /. (fn -. 1.0)
  in
  { count = n;
    mean;
    stddev = sqrt var;
    min = arr.(0);
    max = arr.(n - 1);
    p50 = quantile arr 0.5;
    p95 = quantile arr 0.95;
    p99 = quantile arr 0.99 }

let of_ints samples = of_list (List.map float_of_int samples)

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p95=%.2f max=%.2f"
    t.count t.mean t.stddev t.min t.p50 t.p95 t.max
