(** Streaming statistics in O(1) memory.

    The resource-telemetry layer feeds one observation per round (or per
    node, or per worker) into these accumulators, so a million-node,
    million-round run can summarize any counter without materializing
    the sample list — the primitive every large-n telemetry aggregate in
    the repository is built on.

    Two estimators:

    - {!Quantile}: the P² algorithm of Jain & Chlamtac (1985) — five
      markers per tracked quantile, adjusted with a piecewise-parabolic
      update; exact for the first five observations, an approximation
      afterwards: within a few percent of the sample range on long
      well-mixed streams, looser just past the five-observation buffer
      and on sorted/reversed feeds (property-tested against {!Summary}
      in [test/test_stats.ml], with measured error bounds per stream
      length and order);
    - mean / variance via Welford's online update, which is numerically
      stable where a naive sum-of-squares cancels catastrophically.

    {!t} bundles both: count, mean, variance, min, max, and P² markers
    for p50 / p95 / p99 — the same shape {!Summary} computes exactly. *)

module Quantile : sig
  type t

  val create : q:float -> t
  (** Track the [q]-quantile, [0 < q < 1].
      @raise Invalid_argument outside that open interval. *)

  val add : t -> float -> unit

  val count : t -> int

  val estimate : t -> float
  (** Current estimate: exact (interpolated order statistic) while
      [count <= 5], the P² middle-marker height afterwards.
      @raise Invalid_argument when no observation was added. *)
end

type t

val create : unit -> t

val add : t -> float -> unit

val add_int : t -> int -> unit

val count : t -> int

val mean : t -> float
(** 0. when empty. *)

val variance : t -> float
(** Sample variance (n−1 denominator); 0. for fewer than two
    observations. *)

val stddev : t -> float

val min_value : t -> float
(** @raise Invalid_argument when empty. *)

val max_value : t -> float
(** @raise Invalid_argument when empty. *)

val to_summary : t -> Summary.t
(** The streaming counterpart of {!Summary.of_list}: mean / stddev /
    min / max are exact, p50 / p95 / p99 are P² estimates.
    @raise Invalid_argument when empty. *)
