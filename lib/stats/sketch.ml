(* Streaming accumulators: P² quantile markers (Jain & Chlamtac 1985)
   and Welford mean/variance. Both are O(1) memory per tracked
   statistic, which is what lets resource telemetry aggregate per-round
   and per-node observations at million-node scale. *)

module Quantile = struct
  (* Five markers: minimum, the q/2, q, (1+q)/2 quantile estimates, and
     the maximum. [heights] are the marker values, [pos] their current
     (1-based) positions in the observation sequence, [desired] where
     each position ideally sits, advanced by [incr] per observation.
     The first five observations are buffered in [first] and the
     markers initialized from their sorted order. *)
  type t = {
    q : float;
    heights : float array;   (* 5 *)
    pos : float array;       (* 5, strictly increasing *)
    desired : float array;   (* 5 *)
    incr : float array;      (* 5 *)
    first : float array;     (* buffer for the first 5 observations *)
    mutable count : int;
  }

  let create ~q =
    if not (q > 0.0 && q < 1.0) then
      invalid_arg "Sketch.Quantile.create: q must be in (0, 1)";
    { q;
      heights = Array.make 5 0.0;
      pos = [| 1.0; 2.0; 3.0; 4.0; 5.0 |];
      desired = [| 1.0; 1.0 +. (2.0 *. q); 1.0 +. (4.0 *. q);
                   3.0 +. (2.0 *. q); 5.0 |];
      incr = [| 0.0; q /. 2.0; q; (1.0 +. q) /. 2.0; 1.0 |];
      first = Array.make 5 0.0;
      count = 0 }

  let count t = t.count

  (* Piecewise-parabolic (P²) candidate for marker [i] moved by [d]
     (±1). Positions are strictly increasing, so every denominator is
     at least 1. *)
  let parabolic t i d =
    let h = t.heights and n = t.pos in
    h.(i)
    +. d
       /. (n.(i + 1) -. n.(i - 1))
       *. (((n.(i) -. n.(i - 1) +. d) *. (h.(i + 1) -. h.(i))
            /. (n.(i + 1) -. n.(i)))
          +. ((n.(i + 1) -. n.(i) -. d) *. (h.(i) -. h.(i - 1))
             /. (n.(i) -. n.(i - 1))))

  let linear t i d =
    let h = t.heights and n = t.pos in
    let j = i + int_of_float d in
    h.(i) +. (d *. (h.(j) -. h.(i)) /. (n.(j) -. n.(i)))

  let add t x =
    t.count <- t.count + 1;
    if t.count <= 5 then begin
      t.first.(t.count - 1) <- x;
      if t.count = 5 then begin
        Array.blit t.first 0 t.heights 0 5;
        Array.sort Float.compare t.heights
      end
    end
    else begin
      let h = t.heights in
      (* Cell k: h.(k) <= x < h.(k+1), extending the extremes first. *)
      let k =
        if x < h.(0) then begin
          h.(0) <- x;
          0
        end
        else if x >= h.(4) then begin
          h.(4) <- x;
          3
        end
        else begin
          let k = ref 0 in
          while x >= h.(!k + 1) do incr k done;
          !k
        end
      in
      for i = k + 1 to 4 do
        t.pos.(i) <- t.pos.(i) +. 1.0
      done;
      for i = 0 to 4 do
        t.desired.(i) <- t.desired.(i) +. t.incr.(i)
      done;
      (* Nudge the three interior markers toward their desired
         positions, keeping positions strictly increasing. *)
      for i = 1 to 3 do
        let d = t.desired.(i) -. t.pos.(i) in
        if
          (d >= 1.0 && t.pos.(i + 1) -. t.pos.(i) > 1.0)
          || (d <= -1.0 && t.pos.(i - 1) -. t.pos.(i) < -1.0)
        then begin
          let d = if d >= 1.0 then 1.0 else -1.0 in
          let candidate = parabolic t i d in
          t.heights.(i) <-
            (if h.(i - 1) < candidate && candidate < h.(i + 1) then candidate
             else linear t i d);
          t.pos.(i) <- t.pos.(i) +. d
        end
      done
    end

  let estimate t =
    if t.count = 0 then invalid_arg "Sketch.Quantile.estimate: empty";
    if t.count <= 5 then begin
      let sorted = Array.sub t.first 0 t.count in
      Array.sort Float.compare sorted;
      Summary.quantile sorted t.q
    end
    else t.heights.(2)
end

type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;       (* Welford's sum of squared deviations *)
  mutable min : float;
  mutable max : float;
  p50 : Quantile.t;
  p95 : Quantile.t;
  p99 : Quantile.t;
}

let create () =
  { count = 0;
    mean = 0.0;
    m2 = 0.0;
    min = infinity;
    max = neg_infinity;
    p50 = Quantile.create ~q:0.5;
    p95 = Quantile.create ~q:0.95;
    p99 = Quantile.create ~q:0.99 }

let add t x =
  t.count <- t.count + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  Quantile.add t.p50 x;
  Quantile.add t.p95 x;
  Quantile.add t.p99 x

let add_int t x = add t (float_of_int x)

let count t = t.count

let mean t = if t.count = 0 then 0.0 else t.mean

let variance t =
  if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)

let stddev t = sqrt (variance t)

let min_value t =
  if t.count = 0 then invalid_arg "Sketch.min_value: empty";
  t.min

let max_value t =
  if t.count = 0 then invalid_arg "Sketch.max_value: empty";
  t.max

let to_summary t =
  if t.count = 0 then invalid_arg "Sketch.to_summary: empty";
  { Summary.count = t.count;
    mean = mean t;
    stddev = stddev t;
    min = t.min;
    max = t.max;
    p50 = Quantile.estimate t.p50;
    p95 = Quantile.estimate t.p95;
    p99 = Quantile.estimate t.p99 }
