(** Pseudo-random function family, instantiated as HMAC-SHA256.

    This is the PRF of the paper's Appendix-D construction: node [i] holds a
    secret key [sk_i]; the mining attempt for a message [m] evaluates
    [rho = PRF_{sk_i}(m)] and succeeds iff [rho] falls below a difficulty
    threshold. {!output_fraction} maps the 256-bit output to a uniform
    fraction in [\[0,1)] so difficulty parameters can be expressed as plain
    probabilities. *)

type key = string
(** A PRF secret key (arbitrary bytes). *)

val gen : Rng.t -> key
(** [gen rng] samples a fresh 32-byte key from [rng]. *)

val eval : key -> string -> string
(** [eval key msg] is the 32-byte PRF output on [msg]. Deterministic in
    [(key, msg)]. *)

type cached
(** A key with its HMAC pad midstates precomputed ({!Hmac.precompute}).
    Callers that evaluate the PRF many times under one key (mining, VRF
    evaluation) should cache once and use {!eval_cached}. *)

val cache : key -> cached
(** [cache key] precomputes the HMAC midstates for [key]. *)

val eval_cached : cached -> string -> string
(** [eval_cached (cache key) msg = eval key msg], bit for bit, at half the
    compression count for short messages. *)

val output_fraction : string -> float
(** [output_fraction rho] maps a PRF output to a uniform value in [\[0,1)]
    (first 53 bits of [rho], big-endian). Used to compare against
    probability-form difficulty parameters. *)

val below_difficulty : string -> p:float -> bool
(** [below_difficulty rho ~p] is [true] iff [rho] wins a success-probability
    [p] lottery, i.e. [output_fraction rho < p]. *)
