let block_size = 64

let pad_key key =
  let key =
    if String.length key > block_size then Sha256.digest_string key else key
  in
  let padded = Bytes.make block_size '\x00' in
  Bytes.blit_string key 0 padded 0 (String.length key);
  padded

let xor_pad padded byte =
  String.init block_size (fun i ->
      Char.chr (Char.code (Bytes.get padded i) lxor byte))

(* Midstates with the ipad/opad block already absorbed. Every tag under
   the same key starts from these, so a precomputed key pays one
   compression for the message and one for the outer digest instead of
   additionally re-absorbing both 64-byte pads. *)
type key_ctx = { inner0 : Sha256.ctx; outer0 : Sha256.ctx }

let precompute ~key =
  let padded = pad_key key in
  let ipad = xor_pad padded 0x36 and opad = xor_pad padded 0x5c in
  let inner0 = Sha256.init () in
  Sha256.feed_string inner0 ipad;
  let outer0 = Sha256.init () in
  Sha256.feed_string outer0 opad;
  { inner0; outer0 }

let finish kctx inner =
  let inner_digest = Sha256.finalize inner in
  let outer = Sha256.copy kctx.outer0 in
  Sha256.feed_string outer inner_digest;
  Sha256.finalize outer

let mac_with kctx msg =
  let inner = Sha256.copy kctx.inner0 in
  Sha256.feed_string inner msg;
  finish kctx inner

(* Reuse the injective encoding of Sha256.digest_concat: 8-byte big-endian
   length prefix before each part. *)
let encode part =
  let n = String.length part in
  let prefix =
    String.init 8 (fun i -> Char.chr ((n lsr (8 * (7 - i))) land 0xff))
  in
  prefix ^ part

let mac_concat_with kctx parts =
  let inner = Sha256.copy kctx.inner0 in
  List.iter (fun part -> Sha256.feed_string inner (encode part)) parts;
  finish kctx inner

let equal a b =
  if String.length a <> String.length b then false
  else begin
    let diff = ref 0 in
    String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code b.[i])) a;
    !diff = 0
  end

(* Batched sweeps. A singleton tag pays two [Sha256.copy]s — four fresh
   array/bytes allocations. A batch restores one pair of scratch contexts
   from the cached midstates per entry instead, so the whole sweep touches
   the allocator only for the output digests. Each function is observably
   equivalent to mapping its singleton counterpart. *)

let scratch () = (Sha256.init (), Sha256.init ())

let mac_scratch ~inner ~outer kctx msg =
  Sha256.restore inner ~from:kctx.inner0;
  Sha256.feed_string inner msg;
  let inner_digest = Sha256.finalize inner in
  Sha256.restore outer ~from:kctx.outer0;
  Sha256.feed_string outer inner_digest;
  Sha256.finalize outer

let mac_concat_scratch ~inner ~outer kctx parts =
  Sha256.restore inner ~from:kctx.inner0;
  List.iter (fun part -> Sha256.feed_string inner (encode part)) parts;
  let inner_digest = Sha256.finalize inner in
  Sha256.restore outer ~from:kctx.outer0;
  Sha256.feed_string outer inner_digest;
  Sha256.finalize outer

let mac_batch kctx msgs =
  match msgs with
  | [] -> []
  | [ msg ] -> [ mac_with kctx msg ]
  | msgs ->
      let inner, outer = scratch () in
      List.map (fun msg -> mac_scratch ~inner ~outer kctx msg) msgs

let mac_concat_batch entries =
  match entries with
  | [] -> []
  | [ (kctx, parts) ] -> [ mac_concat_with kctx parts ]
  | entries ->
      let inner, outer = scratch () in
      List.map
        (fun (kctx, parts) -> mac_concat_scratch ~inner ~outer kctx parts)
        entries

let verify_batch kctx entries =
  match entries with
  | [] -> []
  | [ (msg, tag) ] -> [ equal tag (mac_with kctx msg) ]
  | entries ->
      let inner, outer = scratch () in
      List.map
        (fun (msg, tag) -> equal tag (mac_scratch ~inner ~outer kctx msg))
        entries

let first_invalid kctx entries =
  match entries with
  | [] -> None
  | entries ->
      let inner, outer = scratch () in
      let rec go i = function
        | [] -> None
        | (msg, tag) :: rest ->
            if equal tag (mac_scratch ~inner ~outer kctx msg) then go (i + 1) rest
            else Some i
      in
      go 0 entries

let mac ~key msg = mac_with (precompute ~key) msg

let mac_concat ~key parts = mac_concat_with (precompute ~key) parts
