type crs = { trapdoor : Hmac.key_ctx }

type statement = {
  rho : string;
  com : Commitment.t;
  crs_comm : string;
  msg : string;
}

type witness = { sk : Prf.key; salt : string }

type proof = { tag : string }

(* Charged wire size of a real GOS proof for this relation. *)
let simulated_proof_bytes = 384

let gen rng =
  let key =
    String.init 32 (fun _ ->
        Char.chr (Int64.to_int (Int64.logand (Rng.next_int64 rng) 0xffL)))
  in
  { trapdoor = Hmac.precompute ~key }

let encode_statement stmt =
  Sha256.digest_concat [ "nizk-stmt"; stmt.rho; stmt.com; stmt.crs_comm; stmt.msg ]

let in_language crs_comm stmt w =
  String.equal stmt.crs_comm (Commitment.crs_to_string crs_comm)
  && Commitment.verify crs_comm stmt.com ~value:w.sk ~salt:w.salt
  && String.equal stmt.rho (Prf.eval w.sk stmt.msg)

let prove crs crs_comm stmt w =
  if not (in_language crs_comm stmt w) then
    invalid_arg "Nizk.prove: statement not in the language";
  { tag = Hmac.mac_with crs.trapdoor (encode_statement stmt) }

let verify crs stmt proof =
  Hmac.equal proof.tag (Hmac.mac_with crs.trapdoor (encode_statement stmt))

(* All proofs under one CRS share the trapdoor key, so a batch is a
   single-key HMAC sweep over the encoded statements. *)
let verify_batch crs entries =
  Hmac.verify_batch crs.trapdoor
    (List.map (fun (stmt, proof) -> (encode_statement stmt, proof.tag)) entries)

let proof_bits _ = simulated_proof_bytes * 8

let proof_to_string proof = proof.tag
