type scheme = {
  masters : string array;
  master_kctxs : Hmac.key_ctx array;
  current : int array;  (* lowest signable slot per node *)
  (* Memoized slot-key midstates, keyed by (signer, slot). Purely a
     performance cache inside the idealized functionality: erasure is
     enforced by [current], not by forgetting derived keys, so keeping
     them cached changes no observable behavior. *)
  slot_kctxs : (int * int, Hmac.key_ctx) Hashtbl.t;
  (* The memo table is read and filled from concurrent honest-node steps
     when the engine shards a round across domains; derived keys are
     deterministic, so a duplicated compute is harmless but the table
     itself needs exclusion. *)
  slot_lock : Mutex.t;
}

type tag = string

type capability = Master | From_slot of int

let setup ~n rng =
  let masters = Array.init n (fun _ -> Prf.gen rng) in
  { masters;
    master_kctxs = Array.map (fun key -> Hmac.precompute ~key) masters;
    current = Array.make n 0;
    slot_kctxs = Hashtbl.create 256;
    slot_lock = Mutex.create () }

let check_range scheme i =
  if i < 0 || i >= Array.length scheme.masters then
    invalid_arg "Forward_secure: signer out of range"

let current_slot scheme i =
  check_range scheme i;
  scheme.current.(i)

let slot_kctx scheme ~signer ~slot =
  let cached =
    Mutex.protect scheme.slot_lock (fun () ->
        Hashtbl.find_opt scheme.slot_kctxs (signer, slot))
  in
  match cached with
  | Some kctx -> kctx
  | None ->
      let key =
        Hmac.mac_concat_with scheme.master_kctxs.(signer)
          [ "fs-slot"; string_of_int slot ]
      in
      let kctx = Hmac.precompute ~key in
      Mutex.protect scheme.slot_lock (fun () ->
          Hashtbl.replace scheme.slot_kctxs (signer, slot) kctx);
      kctx

let raw_sign scheme ~signer ~slot msg =
  Hmac.mac_concat_with (slot_kctx scheme ~signer ~slot) [ "fs-sig"; msg ]

let sign scheme ~signer ~slot msg =
  check_range scheme signer;
  if slot < 0 then invalid_arg "Forward_secure.sign: negative slot";
  if slot < scheme.current.(signer) then
    invalid_arg "Forward_secure.sign: slot key erased";
  raw_sign scheme ~signer ~slot msg

let update scheme ~signer ~slot =
  check_range scheme signer;
  if slot > scheme.current.(signer) then scheme.current.(signer) <- slot

let verify scheme ~signer ~slot msg tag =
  check_range scheme signer;
  Hmac.equal tag (raw_sign scheme ~signer ~slot msg)

let corrupt scheme ~erasure i =
  check_range scheme i;
  if erasure then From_slot scheme.current.(i) else Master

let adversary_sign scheme ~capability ~signer ~slot msg =
  check_range scheme signer;
  if slot < 0 then None
  else
    match capability with
    | Master -> Some (raw_sign scheme ~signer ~slot msg)
    | From_slot from -> if slot >= from then Some (raw_sign scheme ~signer ~slot msg) else None
