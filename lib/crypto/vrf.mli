(** Adaptively secure verifiable random function, built exactly as in the
    paper's Appendix D.4: the public key is a perfectly binding commitment
    to a PRF secret key, the VRF output on a message [m] is [PRF_sk(m)],
    and the proof is a NIZK for the language L of Appendix D.3 ("this
    output is the PRF of the key committed in my public key, evaluated on
    [m]").

    This is the object that makes {e vote-specific eligibility} work:
    evaluating requires the secret key (so the adversary cannot predict an
    honest node's eligibility), while the proof lets everyone verify an
    announced eligibility. *)

type params = {
  crs_comm : Commitment.crs;  (** commitment CRS from trusted setup *)
  crs_nizk : Nizk.crs;        (** NIZK CRS from trusted setup *)
}

type sk = {
  index : int;              (** owning node *)
  prf_key : Prf.key;        (** committed PRF key *)
  prf_cached : Prf.cached;  (** same key with HMAC midstates precomputed *)
  salt : string;            (** commitment randomness (part of the witness) *)
}

type pk = {
  pk_index : int;           (** owning node *)
  com : Commitment.t;       (** commitment to the node's PRF key *)
}

type evaluation = {
  rho : string;        (** pseudorandom output *)
  proof : Nizk.proof;  (** NIZK of correct evaluation *)
}

val keygen : params -> Rng.t -> index:int -> sk * pk
(** Sample a key pair for node [index] (run inside trusted setup). *)

val eval : params -> sk -> string -> evaluation
(** [eval params sk m] evaluates the VRF: output [PRF_sk(m)] plus proof. *)

val verify : params -> pk -> string -> evaluation -> bool
(** [verify params pk m ev] checks [ev.proof] against the statement
    [(ev.rho, pk.com, crs_comm, m)]. Sound: accepts only genuine
    evaluations under the key committed in [pk]. *)

val verify_batch : params -> (pk * string * evaluation) list -> bool list
(** [verify_batch params [(pk, m, ev); ...] = List.map (fun (pk, m, ev)
    -> verify params pk m ev) ...]: one amortized NIZK sweep (all proofs
    under a CRS share the trapdoor key), one probe span for the batch. *)

val output_fraction : evaluation -> float
(** The output mapped to a uniform fraction in [\[0,1)]; compare against a
    difficulty expressed as a probability. *)

val evaluation_bits : evaluation -> int
(** Wire size charged for attaching [(rho, proof)] to a message. *)
