(** HMAC-SHA256 (RFC 2104 / FIPS 198-1).

    The message-authentication code used as the PRF of the paper's
    Appendix-D compiler and as the tag algorithm of the idealized signature
    functionality. Validated against the RFC 4231 test vectors in the test
    suite.

    Every simulated crypto primitive in this repository (PRF, VRF, Fmine,
    signatures, NIZK) evaluates HMAC thousands of times per run under a
    {e fixed} key, so precomputing the key pads is the dominant saving:
    {!precompute} absorbs the ipad/opad blocks once and {!mac_with} then
    costs two SHA-256 compressions per short message instead of four.
    [mac ~key msg = mac_with (precompute ~key) msg] bit-for-bit. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag of [msg] under [key].
    Keys longer than the 64-byte block are hashed first, shorter keys are
    zero-padded, per the standard. *)

val mac_concat : key:string -> string list -> string
(** [mac_concat ~key parts] tags the injective length-prefixed encoding of
    [parts] (same encoding as {!Sha256.digest_concat}). *)

type key_ctx
(** A precomputed key: the SHA-256 midstates with the ipad/opad blocks
    already absorbed. Immutable and reusable across any number of tags. *)

val precompute : key:string -> key_ctx
(** [precompute ~key] derives the pad midstates for [key] (two SHA-256
    compressions, paid once per key instead of once per tag). *)

val mac_with : key_ctx -> string -> string
(** [mac_with kctx msg = mac ~key msg] for the [key] that produced
    [kctx], at half the compression count for short messages. *)

val mac_concat_with : key_ctx -> string list -> string
(** [mac_concat_with kctx parts = mac_concat ~key parts] for the [key]
    that produced [kctx]. *)

val equal : string -> string -> bool
(** Constant-time comparison of two equal-length tags; [false] on length
    mismatch. *)
