(** HMAC-SHA256 (RFC 2104 / FIPS 198-1).

    The message-authentication code used as the PRF of the paper's
    Appendix-D compiler and as the tag algorithm of the idealized signature
    functionality. Validated against the RFC 4231 test vectors in the test
    suite.

    Every simulated crypto primitive in this repository (PRF, VRF, Fmine,
    signatures, NIZK) evaluates HMAC thousands of times per run under a
    {e fixed} key, so precomputing the key pads is the dominant saving:
    {!precompute} absorbs the ipad/opad blocks once and {!mac_with} then
    costs two SHA-256 compressions per short message instead of four.
    [mac ~key msg = mac_with (precompute ~key) msg] bit-for-bit. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag of [msg] under [key].
    Keys longer than the 64-byte block are hashed first, shorter keys are
    zero-padded, per the standard. *)

val mac_concat : key:string -> string list -> string
(** [mac_concat ~key parts] tags the injective length-prefixed encoding of
    [parts] (same encoding as {!Sha256.digest_concat}). *)

type key_ctx
(** A precomputed key: the SHA-256 midstates with the ipad/opad blocks
    already absorbed. Immutable and reusable across any number of tags. *)

val precompute : key:string -> key_ctx
(** [precompute ~key] derives the pad midstates for [key] (two SHA-256
    compressions, paid once per key instead of once per tag). *)

val mac_with : key_ctx -> string -> string
(** [mac_with kctx msg = mac ~key msg] for the [key] that produced
    [kctx], at half the compression count for short messages. *)

val mac_concat_with : key_ctx -> string list -> string
(** [mac_concat_with kctx parts = mac_concat ~key parts] for the [key]
    that produced [kctx]. *)

val equal : string -> string -> bool
(** Constant-time comparison of two equal-length tags; [false] on length
    mismatch. *)

(** {1 Batched sweeps}

    Per-round verification in the protocols checks dozens of tags under
    one key (quorum certificates, eligibility proofs). The batch entry
    points below amortize the per-tag context setup: one pair of scratch
    SHA-256 contexts is {!Sha256.restore}d from the cached midstates per
    entry, replacing two fresh context copies per tag. Every batch
    function returns exactly what mapping its singleton counterpart
    would — same values, same order — including for empty and singleton
    batches. *)

val mac_batch : key_ctx -> string list -> string list
(** [mac_batch kctx msgs = List.map (mac_with kctx) msgs]. *)

val mac_concat_batch : (key_ctx * string list) list -> string list
(** [mac_concat_batch entries = List.map (fun (k, ps) -> mac_concat_with
    k ps) entries]. Keys may differ per entry (per-signer midstates). *)

val verify_batch : key_ctx -> (string * string) list -> bool list
(** [verify_batch kctx [(msg, tag); ...]] is, for each entry, whether
    [tag] is the HMAC tag of [msg] under [kctx]
    ([equal tag (mac_with kctx msg)]), in order. *)

val first_invalid : key_ctx -> (string * string) list -> int option
(** [first_invalid kctx entries] is the index of the first [(msg, tag)]
    entry whose tag does not verify, or [None] if all verify. *)
