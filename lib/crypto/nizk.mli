(** Simulated non-interactive zero-knowledge proof system for the NP
    language L of Appendix D.3:

    [(stmt, w) ∈ L] iff [stmt = (rho, com, crs_comm, m)],
    [w = (sk, salt)], [com = commit(crs_comm, sk, salt)] and
    [rho = PRF_sk(m)].

    The paper instantiates this from bilinear groups (Groth–Ostrovsky–Sahai,
    Theorem 18) with perfect completeness, non-erasure computational
    zero-knowledge, and perfect knowledge extraction. We substitute a
    {e simulated} proof system with the same interface and the same
    completeness/soundness guarantees:

    - {!prove} checks the witness against the relation and refuses to
      produce a proof for a false statement (raising
      [Invalid_argument]); the proof object is an HMAC tag over the
      statement under a trapdoor embedded in the CRS.
    - {!verify} recomputes the tag. Because only [prove] emits tags and
      [prove] only accepts true statements, a verifying proof implies the
      statement is true — this {e is} perfect knowledge soundness, realized
      by letting the simulator play the extractor.

    Zero-knowledge is a property against computational adversaries; our
    rule-based adversaries never inspect proof internals (API discipline:
    proofs are opaque), so the simulation is adequate for every experiment.
    See DESIGN.md §3. *)

type crs
(** Proof-system CRS (contains the simulation trapdoor; opaque). *)

type statement = {
  rho : string;         (** claimed PRF output *)
  com : Commitment.t;   (** commitment to the prover's secret key *)
  crs_comm : string;    (** serialized commitment CRS, binds the statement *)
  msg : string;         (** PRF input being "mined" *)
}

type witness = {
  sk : Prf.key;         (** PRF secret key *)
  salt : string;        (** commitment randomness *)
}

type proof
(** An opaque proof. *)

val gen : Rng.t -> crs
(** Sample the proof-system CRS. *)

val in_language : Commitment.crs -> statement -> witness -> bool
(** [in_language crs_comm stmt w] decides the relation L directly. *)

val prove : crs -> Commitment.crs -> statement -> witness -> proof
(** [prove crs crs_comm stmt w] produces a proof.
    @raise Invalid_argument if [(stmt, w)] is not in L (perfect
    completeness holds for true statements; false ones are rejected). *)

val verify : crs -> statement -> proof -> bool
(** [verify crs stmt proof] accepts iff [proof] was produced by {!prove}
    on [stmt]. *)

val verify_batch : crs -> (statement * proof) list -> bool list
(** [verify_batch crs entries = List.map (fun (s, p) -> verify crs s p)
    entries], amortized as one {!Hmac.verify_batch} sweep under the CRS
    trapdoor key. *)

val proof_bits : proof -> int
(** Wire size of a proof in bits (for communication accounting; sized to
    match a Groth–Ostrovsky–Sahai proof for this relation, ~3 group
    elements per gate — we charge a flat 384 bytes). *)

val proof_to_string : proof -> string
(** Serialization used in transcripts. *)
