(** From-scratch SHA-256 (FIPS 180-4).

    This is the hash function underlying every other cryptographic component
    in the reproduction: HMAC, the PRF, commitments, and the simulated NIZK
    tags. It is a from-scratch OCaml implementation — no C stubs — whose
    compression function runs on untagged native [int]s masked to 32 bits
    (requires a 64-bit-[int] OCaml, asserted at load), and is validated in
    the test suite against the official NIST test vectors.

    Both a one-shot and an incremental interface are provided. All digests
    are 32 raw bytes; use {!to_hex} for a printable form. *)

type ctx
(** Mutable hashing context for incremental use. *)

val init : unit -> ctx
(** [init ()] is a fresh context with the standard initial hash state. *)

val copy : ctx -> ctx
(** [copy ctx] is an independent snapshot of [ctx]: feeding or finalizing
    either context leaves the other untouched. This is what makes HMAC
    midstate caching possible — absorb a fixed prefix once, then [copy]
    per message ({!Hmac.precompute}). *)

val restore : ctx -> from:ctx -> unit
(** [restore ctx ~from] resets [ctx] to the state of [from] in place,
    without allocating. Batched HMAC sweeps use one scratch context
    restored from the cached midstate per message instead of one fresh
    {!copy} per message ({!Hmac.mac_batch}). [from] is not modified. *)

val feed_bytes : ctx -> bytes -> pos:int -> len:int -> unit
(** [feed_bytes ctx b ~pos ~len] absorbs [len] bytes of [b] starting at
    [pos]. @raise Invalid_argument if the range is out of bounds. *)

val feed_string : ctx -> string -> unit
(** [feed_string ctx s] absorbs all of [s]. *)

val finalize : ctx -> string
(** [finalize ctx] pads, finishes, and returns the 32-byte digest. The
    context must not be used afterwards. *)

val digest_string : string -> string
(** [digest_string s] is the 32-byte SHA-256 digest of [s]. *)

val digest_concat : string list -> string
(** [digest_concat parts] hashes the concatenation of [parts] without
    building the intermediate string. Each part is length-prefixed
    internally so that the encoding is injective (no ambiguity between
    ["ab";"c"] and ["a";"bc"]). *)

val to_hex : string -> string
(** [to_hex d] renders a raw digest as lowercase hexadecimal. *)

val digest_size : int
(** Size of a digest in bytes (32). *)
