(* [kctxs.(i)] is [keys.(i)] with the HMAC pad midstates precomputed;
   [keys] is kept as raw bytes for {!corrupt_key}. *)
type scheme = { keys : string array; kctxs : Hmac.key_ctx array }

type tag = string

let setup ~n rng =
  let keys = Array.init n (fun _ -> Prf.gen rng) in
  { keys; kctxs = Array.map (fun key -> Hmac.precompute ~key) keys }

let n scheme = Array.length scheme.keys

let check_range scheme i =
  if i < 0 || i >= Array.length scheme.keys then
    invalid_arg "Signature: signer out of range"

let p_sign = Baobs.Probe.register "signature.sign"

let p_verify = Baobs.Probe.register "signature.verify"

let mac scheme ~signer msg =
  Hmac.mac_concat_with scheme.kctxs.(signer) [ "sig"; msg ]

let sign scheme ~signer msg =
  check_range scheme signer;
  let t0 = Baobs.Probe.start () in
  let tag = mac scheme ~signer msg in
  Baobs.Probe.stop p_sign t0;
  tag

let verify scheme ~signer msg tag =
  check_range scheme signer;
  let t0 = Baobs.Probe.start () in
  let ok = Hmac.equal tag (mac scheme ~signer msg) in
  Baobs.Probe.stop p_verify t0;
  ok

let verify_batch scheme entries =
  match entries with
  | [] -> []
  | entries ->
      List.iter (fun (signer, _, _) -> check_range scheme signer) entries;
      let t0 = Baobs.Probe.start () in
      let macs =
        Hmac.mac_concat_batch
          (List.map
             (fun (signer, msg, _) -> (scheme.kctxs.(signer), [ "sig"; msg ]))
             entries)
      in
      let oks =
        List.map2 (fun (_, _, tag) mac -> Hmac.equal tag mac) entries macs
      in
      Baobs.Probe.stop p_verify t0;
      oks

let corrupt_key scheme i =
  check_range scheme i;
  scheme.keys.(i)

let tag_bits = 32 * 8
