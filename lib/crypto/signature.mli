(** Idealized digital-signature functionality.

    The honest-majority protocols of Appendix C sign every message and relay
    certificates (sets of signed votes). The proofs use signatures only for
    (a) sender authenticity and (b) transferability of votes inside
    certificates, so we provide an {e idealized} functionality: a trusted
    setup holds one MAC key per node; [sign] produces an HMAC tag; [verify]
    recomputes it with the signer's key held by the functionality. Within
    the simulation, unforgeability is absolute — adversary code can only
    sign for nodes whose keys it has been handed via {!corrupt_key}, which
    the engine calls on corruption. This strengthens (never weakens) every
    experiment relative to computational signatures; see DESIGN.md §3. *)

type scheme
(** The signature functionality for one protocol execution. *)

type tag = string
(** A signature (32 raw bytes). *)

val setup : n:int -> Rng.t -> scheme
(** [setup ~n rng] creates keys for nodes [0 .. n-1]. *)

val n : scheme -> int
(** Number of registered nodes. *)

val sign : scheme -> signer:int -> string -> tag
(** [sign scheme ~signer msg] is the signature of [msg] by [signer]. In the
    engine, honest nodes sign their own messages; adversaries may call this
    only for corrupt signers (enforced by engine discipline, validated in
    tests). @raise Invalid_argument on an out-of-range signer. *)

val verify : scheme -> signer:int -> string -> tag -> bool
(** [verify scheme ~signer msg tag] checks that [tag] is [signer]'s
    signature of [msg]. *)

val verify_batch : scheme -> (int * string * tag) list -> bool list
(** [verify_batch scheme [(signer, msg, tag); ...] = List.map (fun
    (signer, msg, tag) -> verify scheme ~signer msg tag) ...]: one
    amortized HMAC sweep over the per-signer midstates, one probe span
    for the batch. @raise Invalid_argument on any out-of-range signer. *)

val corrupt_key : scheme -> int -> string
(** [corrupt_key scheme i] reveals node [i]'s signing key — handed to the
    adversary when it corrupts [i]. *)

val tag_bits : int
(** Wire size of a signature in bits. *)
