let digest_size = 32

(* The compression core runs on untagged native [int]s masked to 32 bits
   instead of boxed [Int32.t]: every Int32 operation allocates a box, and
   a single compression performs ~600 of them, so the boxed version spends
   most of its time in the allocator. Deferred masking keeps intermediate
   sums (at most five 32-bit terms, < 2^35) exact, which needs a few bits
   of headroom above 32 — any 64-bit OCaml qualifies. *)
let () = assert (Sys.int_size >= 36)

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b;
     0x59f111f1; 0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01;
     0x243185be; 0x550c7dc3; 0x72be5d74; 0x80deb1fe; 0x9bdc06a7;
     0xc19bf174; 0xe49b69c1; 0xefbe4786; 0x0fc19dc6; 0x240ca1cc;
     0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da; 0x983e5152;
     0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc;
     0x53380d13; 0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85;
     0xa2bfe8a1; 0xa81a664b; 0xc24b8b70; 0xc76c51a3; 0xd192e819;
     0xd6990624; 0xf40e3585; 0x106aa070; 0x19a4c116; 0x1e376c08;
     0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a; 0x5b9cca4f;
     0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

type ctx = {
  h : int array;            (* 8-word chaining state, each masked to 32 bits *)
  block : bytes;            (* 64-byte input buffer *)
  mutable used : int;       (* bytes currently buffered *)
  mutable total : int;      (* total message length in bytes *)
  w : int array;            (* 64-word message schedule, reused *)
}

let init () =
  { h =
      [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
         0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    block = Bytes.create 64;
    used = 0;
    total = 0;
    w = Array.make 64 0 }

let copy ctx =
  { h = Array.copy ctx.h;
    block = Bytes.copy ctx.block;
    used = ctx.used;
    total = ctx.total;
    (* the schedule is scratch space, valid only within [compress] *)
    w = Array.make 64 0 }

let restore ctx ~from =
  Array.blit from.h 0 ctx.h 0 8;
  Bytes.blit from.block 0 ctx.block 0 64;
  ctx.used <- from.used;
  ctx.total <- from.total

let mask32 = 0xffff_ffff

(* Rotations use the double-word trick: [x lor (x lsl 32)] holds the value
   twice, so every right-rotation becomes a single logical shift of the
   doubled word, with one mask shared by the whole xor of rotations. The
   doubled word may run into OCaml's 63rd (sign) bit; that is harmless
   because only [lor]/[lsr]/[land] touch it, and the highest bit any
   rotation here reads sits at position 56. *)
let[@inline always] big_sigma1 e =
  let y = e lor (e lsl 32) in
  ((y lsr 6) lxor (y lsr 11) lxor (y lsr 25)) land mask32

let[@inline always] big_sigma0 a =
  let y = a lor (a lsl 32) in
  ((y lsr 2) lxor (y lsr 13) lxor (y lsr 22)) land mask32

(* Three-operation forms of the FIPS choice/majority functions. *)
let[@inline always] ch e f g = g lxor (e land (f lxor g))
let[@inline always] maj a b c = (a land b) lor (c land (a lor b))

type acc = { a : int; b : int; c : int; d : int;
             e : int; f : int; g : int; h : int }

(* Eight rounds per iteration: instead of shuffling the eight state words
   one slot over after every round, each unrolled round reads and writes
   the permuted names directly, and after eight rounds the names line up
   again. The words travel as arguments so they live in registers rather
   than ref cells (the non-flambda compiler does not unbox refs). *)
let rec rounds w t a b c d e f g h =
  if t = 64 then { a; b; c; d; e; f; g; h }
  else begin
    let t1 = h + big_sigma1 e + ch e f g
             + Array.unsafe_get k t + Array.unsafe_get w t in
    let d = (d + t1) land mask32
    and h = (t1 + big_sigma0 a + maj a b c) land mask32 in
    let t1 = g + big_sigma1 d + ch d e f
             + Array.unsafe_get k (t + 1) + Array.unsafe_get w (t + 1) in
    let c = (c + t1) land mask32
    and g = (t1 + big_sigma0 h + maj h a b) land mask32 in
    let t1 = f + big_sigma1 c + ch c d e
             + Array.unsafe_get k (t + 2) + Array.unsafe_get w (t + 2) in
    let b = (b + t1) land mask32
    and f = (t1 + big_sigma0 g + maj g h a) land mask32 in
    let t1 = e + big_sigma1 b + ch b c d
             + Array.unsafe_get k (t + 3) + Array.unsafe_get w (t + 3) in
    let a = (a + t1) land mask32
    and e = (t1 + big_sigma0 f + maj f g h) land mask32 in
    let t1 = d + big_sigma1 a + ch a b c
             + Array.unsafe_get k (t + 4) + Array.unsafe_get w (t + 4) in
    let h = (h + t1) land mask32
    and d = (t1 + big_sigma0 e + maj e f g) land mask32 in
    let t1 = c + big_sigma1 h + ch h a b
             + Array.unsafe_get k (t + 5) + Array.unsafe_get w (t + 5) in
    let g = (g + t1) land mask32
    and c = (t1 + big_sigma0 d + maj d e f) land mask32 in
    let t1 = b + big_sigma1 g + ch g h a
             + Array.unsafe_get k (t + 6) + Array.unsafe_get w (t + 6) in
    let f = (f + t1) land mask32
    and b = (t1 + big_sigma0 c + maj c d e) land mask32 in
    let t1 = a + big_sigma1 f + ch f g h
             + Array.unsafe_get k (t + 7) + Array.unsafe_get w (t + 7) in
    let e = (e + t1) land mask32
    and a = (t1 + big_sigma0 b + maj b c d) land mask32 in
    rounds w (t + 8) a b c d e f g h
  end

(* Compress the 64-byte block at offset [base] of [src]. The caller
   guarantees [base + 64 <= Bytes.length src]; indices into the schedule
   and state arrays are structurally in range (fixed loop bounds), so the
   unsafe accessors only skip provably dead checks. *)
let compress_block ctx src base =
  let w = ctx.w and h = ctx.h in
  for t = 0 to 15 do
    let i = base + (t * 4) in
    let b0 = Char.code (Bytes.unsafe_get src i)
    and b1 = Char.code (Bytes.unsafe_get src (i + 1))
    and b2 = Char.code (Bytes.unsafe_get src (i + 2))
    and b3 = Char.code (Bytes.unsafe_get src (i + 3)) in
    Array.unsafe_set w t ((b0 lsl 24) lor (b1 lsl 16) lor (b2 lsl 8) lor b3)
  done;
  for t = 16 to 63 do
    let x15 = Array.unsafe_get w (t - 15) and x2 = Array.unsafe_get w (t - 2) in
    let y15 = x15 lor (x15 lsl 32) and y2 = x2 lor (x2 lsl 32) in
    let s0 = ((y15 lsr 7) lxor (y15 lsr 18) lxor (x15 lsr 3)) land mask32
    and s1 = ((y2 lsr 17) lxor (y2 lsr 19) lxor (x2 lsr 10)) land mask32 in
    Array.unsafe_set w t
      ((Array.unsafe_get w (t - 16) + s0 + Array.unsafe_get w (t - 7) + s1)
       land mask32)
  done;
  let r = rounds w 0 h.(0) h.(1) h.(2) h.(3) h.(4) h.(5) h.(6) h.(7) in
  h.(0) <- (h.(0) + r.a) land mask32;
  h.(1) <- (h.(1) + r.b) land mask32;
  h.(2) <- (h.(2) + r.c) land mask32;
  h.(3) <- (h.(3) + r.d) land mask32;
  h.(4) <- (h.(4) + r.e) land mask32;
  h.(5) <- (h.(5) + r.f) land mask32;
  h.(6) <- (h.(6) + r.g) land mask32;
  h.(7) <- (h.(7) + r.h) land mask32

let compress ctx = compress_block ctx ctx.block 0

let feed_bytes ctx src ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length src then
    invalid_arg "Sha256.feed_bytes: range out of bounds";
  ctx.total <- ctx.total + len;
  let rec loop pos len =
    if len > 0 then
      if ctx.used = 0 && len >= 64 then begin
        (* Whole block available with nothing buffered: compress straight
           from the source and skip the copy through [ctx.block]. *)
        compress_block ctx src pos;
        loop (pos + 64) (len - 64)
      end
      else begin
        let room = 64 - ctx.used in
        let take = min room len in
        Bytes.blit src pos ctx.block ctx.used take;
        ctx.used <- ctx.used + take;
        if ctx.used = 64 then begin
          compress ctx;
          ctx.used <- 0
        end;
        loop (pos + take) (len - take)
      end
  in
  loop pos len

let feed_string ctx s =
  feed_bytes ctx (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let finalize ctx =
  let bit_len = ctx.total * 8 in
  (* Append 0x80, pad with zeros to 56 mod 64, then the 64-bit length. *)
  Bytes.set ctx.block ctx.used '\x80';
  ctx.used <- ctx.used + 1;
  if ctx.used > 56 then begin
    Bytes.fill ctx.block ctx.used (64 - ctx.used) '\x00';
    compress ctx;
    ctx.used <- 0
  end;
  Bytes.fill ctx.block ctx.used (56 - ctx.used) '\x00';
  for i = 0 to 7 do
    Bytes.set ctx.block (56 + i)
      (Char.unsafe_chr ((bit_len lsr (8 * (7 - i))) land 0xff))
  done;
  compress ctx;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    Bytes.set out (4 * i) (Char.unsafe_chr ((v lsr 24) land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.unsafe_chr (v land 0xff))
  done;
  Bytes.unsafe_to_string out

let digest_string s =
  let ctx = init () in
  feed_string ctx s;
  finalize ctx

(* Length-prefix each part so the encoding is injective. *)
let digest_concat parts =
  let ctx = init () in
  let len_buf = Bytes.create 8 in
  let feed_len n =
    for i = 0 to 7 do
      Bytes.set len_buf i (Char.chr ((n lsr (8 * (7 - i))) land 0xff))
    done;
    feed_bytes ctx len_buf ~pos:0 ~len:8
  in
  List.iter
    (fun part ->
      feed_len (String.length part);
      feed_string ctx part)
    parts;
  finalize ctx

let to_hex d =
  let buf = Buffer.create (2 * String.length d) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf
