type key = string

let gen rng =
  String.init 32 (fun _ -> Char.chr (Int64.to_int (Int64.logand (Rng.next_int64 rng) 0xffL)))

let eval key msg = Hmac.mac ~key msg

type cached = Hmac.key_ctx

let cache key = Hmac.precompute ~key

let eval_cached c msg = Hmac.mac_with c msg

let output_fraction rho =
  (* Interpret the first 53 bits as a binary fraction. *)
  let bits = ref 0L in
  for i = 0 to 6 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (Char.code rho.[i]))
  done;
  let top53 = Int64.shift_right_logical !bits 3 in
  Int64.to_float top53 *. (1.0 /. 9007199254740992.0)

let below_difficulty rho ~p = output_fraction rho < p
