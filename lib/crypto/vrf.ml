type params = { crs_comm : Commitment.crs; crs_nizk : Nizk.crs }

type sk = {
  index : int;
  prf_key : Prf.key;
  prf_cached : Prf.cached;
  salt : string;
}

type pk = { pk_index : int; com : Commitment.t }

type evaluation = { rho : string; proof : Nizk.proof }

let keygen params rng ~index =
  let prf_key = Prf.gen rng in
  let salt = Commitment.fresh_salt rng in
  let com = Commitment.commit params.crs_comm ~value:prf_key ~salt in
  ({ index; prf_key; prf_cached = Prf.cache prf_key; salt },
   { pk_index = index; com })

let statement params ~com ~rho ~msg =
  { Nizk.rho;
    com;
    crs_comm = Commitment.crs_to_string params.crs_comm;
    msg }

let p_eval = Baobs.Probe.register "vrf.eval"

let p_verify = Baobs.Probe.register "vrf.verify"

let eval params sk msg =
  let t0 = Baobs.Probe.start () in
  let rho = Prf.eval_cached sk.prf_cached msg in
  let com = Commitment.commit params.crs_comm ~value:sk.prf_key ~salt:sk.salt in
  let stmt = statement params ~com ~rho ~msg in
  let witness = { Nizk.sk = sk.prf_key; salt = sk.salt } in
  let ev = { rho; proof = Nizk.prove params.crs_nizk params.crs_comm stmt witness } in
  Baobs.Probe.stop p_eval t0;
  ev

let verify params pk msg ev =
  let t0 = Baobs.Probe.start () in
  let stmt = statement params ~com:pk.com ~rho:ev.rho ~msg in
  let ok = Nizk.verify params.crs_nizk stmt ev.proof in
  Baobs.Probe.stop p_verify t0;
  ok

let verify_batch params entries =
  match entries with
  | [] -> []
  | entries ->
      let t0 = Baobs.Probe.start () in
      let oks =
        Nizk.verify_batch params.crs_nizk
          (List.map
             (fun (pk, msg, ev) ->
               (statement params ~com:pk.com ~rho:ev.rho ~msg, ev.proof))
             entries)
      in
      Baobs.Probe.stop p_verify t0;
      oks

let output_fraction ev = Prf.output_fraction ev.rho

let evaluation_bits ev = (String.length ev.rho * 8) + Nizk.proof_bits ev.proof
