open Basim
open Bacore

let passive () = Engine.passive ~name:"passive" ~model:Corruption.Adaptive

let measure_protocol proto ~n ~reps ~seed ~max_rounds =
  Common.measure ~reps ~seed (fun s ->
      let inputs = Scenario.random_inputs ~n s in
      let result =
        Engine.run proto ~adversary:(passive ()) ~n ~budget:0 ~inputs
          ~max_rounds ~seed:s
      in
      (result, Properties.agreement ~inputs result))

let run ?(reps = 3) ?(seed = 103L) () =
  let params = Params.make ~lambda:40 ~max_epochs:60 () in
  let sub_table =
    Bastats.Table.create
      ~title:"E2a (Thm 2): sub-hm multicast complexity is flat in n (λ = 40)"
      ~columns:
        [ "n"; "multicasts"; "multicast kbits"; "pairwise msgs"; "rounds";
          "per-round multicasts" ]
  in
  List.iter
    (fun n ->
      let proto = Sub_hm.protocol ~params ~world:`Hybrid in
      let r = measure_protocol proto ~n ~reps ~seed ~max_rounds:250 in
      Bastats.Table.add_row sub_table
        [ string_of_int n;
          Bastats.Table.fmt_float (Common.mean_multicasts r);
          Bastats.Table.fmt_float (Common.mean_multicast_bits r /. 1000.0);
          Bastats.Table.fmt_float (Common.mean_multicasts r *. float_of_int n);
          Bastats.Table.fmt_float (Common.mean_rounds r);
          Bastats.Table.fmt_float
            (Common.mean_multicasts r /. Common.mean_rounds r) ])
    [ 101; 201; 401; 801; 1601; 3201 ];
  Bastats.Table.add_note sub_table
    "only O(λ) nodes speak per round regardless of n: the multicast counts \
     do not grow with the network (Theorem 2 / Lemma 15).";
  let sub3_table =
    Bastats.Table.create
      ~title:"E2c: the §3.2 one-third protocol is also flat in n (λ = 40, R = 16)"
      ~columns:[ "n"; "multicasts"; "per-epoch multicasts" ]
  in
  List.iter
    (fun n ->
      let p3 = Params.make ~lambda:40 ~max_epochs:16 () in
      let proto =
        Sub_third.protocol ~params:p3 ~world:`Hybrid ~mode:Sub_third.Bit_specific
      in
      let r = measure_protocol proto ~n ~reps ~seed ~max_rounds:36 in
      Bastats.Table.add_row sub3_table
        [ string_of_int n;
          Bastats.Table.fmt_float (Common.mean_multicasts r);
          Bastats.Table.fmt_float (Common.mean_multicasts r /. 16.0) ])
    [ 201; 801; 3201 ];
  let quad_table =
    Bastats.Table.create
      ~title:"E2b: quadratic-hm multicasts grow with n (pairwise = Θ(n²))"
      ~columns:
        [ "n"; "multicasts"; "pairwise msgs"; "rounds"; "per-round multicasts" ]
  in
  List.iter
    (fun n ->
      let proto = Quadratic_hm.protocol () in
      let r = measure_protocol proto ~n ~reps ~seed ~max_rounds:220 in
      Bastats.Table.add_row quad_table
        [ string_of_int n;
          Bastats.Table.fmt_float (Common.mean_multicasts r);
          Bastats.Table.fmt_float (Common.mean_multicasts r *. float_of_int n);
          Bastats.Table.fmt_float (Common.mean_rounds r);
          Bastats.Table.fmt_float
            (Common.mean_multicasts r /. Common.mean_rounds r) ])
    [ 101; 201; 401 ];
  Bastats.Table.add_note quad_table
    "every node multicasts every round: per-round multicasts ≈ n, so \
     pairwise messages scale as n² — the cost Theorem 1 says is unavoidable \
     under a strongly adaptive adversary, and Theorem 2 avoids without one.";
  [ sub_table; sub3_table; quad_table ]
