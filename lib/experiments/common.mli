(** Shared plumbing for the experiment suite E1–E11: repetition over
    derived seeds (optionally in parallel on a {!Bapar.Pool}), rate
    formatting, and verdict aggregation. Each experiment module exposes
    [run : ?reps:int -> ?seed:int64 -> unit -> Bastats.Table.t list];
    tables are printed by [bin/experiments.exe] and [bench/main.exe] and
    recorded in EXPERIMENTS.md. *)

(** Aggregate over a block of trials. The record carries exact integer
    sums — not means — so that {!merge_rates} is associative and
    commutative and parallel aggregation is bit-identical to the
    sequential fold; the means the tables print are derived at read
    time by the [mean_*] accessors. *)
type rates = {
  trials : int;
  consistency_fail : int;
  validity_fail : int;
  termination_fail : int;
  total_rounds : int;
  total_multicasts : int;
  total_multicast_bits : int;
  total_unicasts : int;
  total_removals : int;
  total_corruptions : int;
}

val empty_rates : rates
(** Identity of {!merge_rates}. *)

val rates_of_trial : Basim.Engine.result * Basim.Properties.verdict -> rates
(** The singleton aggregate of one trial. *)

val merge_rates : rates -> rates -> rates
(** Field-wise sum. Associative, commutative, identity {!empty_rates} —
    the monoid the parallel trial runner folds over. *)

val mean_rounds : rates -> float

val mean_multicasts : rates -> float

val mean_multicast_bits : rates -> float

val mean_unicasts : rates -> float

val mean_removals : rates -> float

val mean_corruptions : rates -> float
(** Means over [trials], derived from the integer sums ([0.] when the
    block is empty). *)

val set_jobs : int -> unit
(** Set the process-wide trial parallelism used by {!measure} when no
    explicit [?jobs] is given (clamped to ≥ 1). The [--jobs] flags of
    [experiments.exe], [ba_run] and [bench/main.exe] land here. *)

val jobs : unit -> int
(** Current setting; initially {!Bapar.Pool.default_jobs}[ ()], i.e.
    BA_JOBS or [Domain.recommended_domain_count ()]. *)

val measure :
  ?jobs:int ->
  reps:int ->
  seed:int64 ->
  (int64 -> Basim.Engine.result * Basim.Properties.verdict) ->
  rates
(** Run [reps] trials on derived seeds ({!seed_of}) and aggregate.
    Trials run on a domain pool of size [?jobs] (default: the
    {!set_jobs} setting) but the result is the job-index-order fold of
    {!merge_rates}, so it is bit-identical for every [jobs] — including
    [~jobs:1], which runs purely sequentially in the calling domain.
    Each trial must build its protocol state inside [f] from the seed
    it is given; [f] is called from worker domains. *)

val rate : int -> int -> string
(** [rate k n] renders "k/n (p%)". *)

val pct : float -> string
(** Percentage with one decimal. *)

val seed_of : int64 -> int -> int64
(** [seed_of base k] — the k-th derived seed. The exact values are
    load-bearing: EXPERIMENTS.md records aggregates produced from them,
    and [test_experiments.ml] regression-pins a sample. *)

val rates_to_json : rates -> Baobs.Json.t
(** Machine-readable form of an aggregated trial block — the JSON twin
    of every rates-derived table row (same shape as before the
    parallel rework: trial counts plus derived means). *)
