(** Shared plumbing for the experiment suite E1–E9: repetition over
    derived seeds, rate formatting, and verdict aggregation. Each
    experiment module exposes [run : ?reps:int -> ?seed:int64 -> unit ->
    Bastats.Table.t list]; tables are printed by [bin/experiments.exe]
    and [bench/main.exe] and recorded in EXPERIMENTS.md. *)

type rates = {
  trials : int;
  consistency_fail : int;
  validity_fail : int;
  termination_fail : int;
  mean_rounds : float;
  mean_multicasts : float;
  mean_multicast_bits : float;
  mean_unicasts : float;
  mean_removals : float;
  mean_corruptions : float;
}

val measure :
  reps:int ->
  seed:int64 ->
  (int64 -> Basim.Engine.result * Basim.Properties.verdict) ->
  rates
(** Run [reps] trials on derived seeds and aggregate. *)

val rate : int -> int -> string
(** [rate k n] renders "k/n (p%)". *)

val pct : float -> string
(** Percentage with one decimal. *)

val seed_of : int64 -> int -> int64
(** [seed_of base k] — the k-th derived seed. *)

val rates_to_json : rates -> Baobs.Json.t
(** Machine-readable form of an aggregated trial block — the JSON twin
    of every rates-derived table row. *)
