open Basim
open Bacore

let n = 201

let params = Params.make ~lambda:40 ~max_epochs:60 ()

let passive () = Engine.passive ~name:"none" ~model:Corruption.Adaptive

(* A corrupt sender that equivocates its round-0 announcement: bit 0 to
   the lower half, bit 1 to the upper half. *)
let equivocating_sender ~sender () =
  { Engine.adv_name = "equivocating-sender";
    model = Corruption.Static;
    caps =
      { Capability.caps = [ Capability.Setup_corruption; Capability.Injection ];
        budget_bound = None };
    setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> [ sender ]);
    intervene =
      (fun view ->
        if view.Engine.round = 0 then
          [ Engine.Inject
              { src = sender;
                dst = Engine.Only (List.init (n / 2) Fun.id);
                payload = Broadcast.Input false };
            Engine.Inject
              { src = sender;
                dst = Engine.Only (List.init (n - (n / 2)) (fun i -> (n / 2) + i));
                payload = Broadcast.Input true } ]
        else []) }

let run ?(reps = 6) ?(seed = 112L) () =
  let table =
    Bastats.Table.create
      ~title:
        (Printf.sprintf
           "E10 (§1.1): Byzantine Broadcast from BA preserves efficiency \
            (n = %d, λ = 40, sub-hm underneath)"
           n)
      ~columns:
        [ "configuration"; "validity fail"; "consistency fail"; "non-term";
          "multicasts"; "rounds" ]
  in
  let add label rates =
    Bastats.Table.add_row table
      [ label;
        Common.rate rates.Common.validity_fail rates.Common.trials;
        Common.rate rates.Common.consistency_fail rates.Common.trials;
        Common.rate rates.Common.termination_fail rates.Common.trials;
        Bastats.Table.fmt_float (Common.mean_multicasts rates);
        Bastats.Table.fmt_float (Common.mean_rounds rates) ]
  in
  (* Baseline: the BA alone, for the multicast comparison. *)
  add "BA alone (sub-hm)"
    (Common.measure ~reps ~seed (fun s ->
         let proto = Sub_hm.protocol ~params ~world:`Hybrid in
         let inputs = Scenario.random_inputs ~n s in
         let result =
           Engine.run proto ~adversary:(passive ()) ~n ~budget:0 ~inputs
             ~max_rounds:250 ~seed:s
         in
         (result, Properties.agreement ~inputs result)));
  (* Broadcast with an honest sender: validity in the broadcast sense. *)
  add "Broadcast, honest sender"
    (Common.measure ~reps ~seed (fun s ->
         let bb =
           Broadcast.of_ba (Sub_hm.protocol ~params ~world:`Hybrid) ~sender:0
         in
         let inputs = Array.make n false in
         inputs.(0) <- true;
         let result =
           Engine.run bb ~adversary:(passive ()) ~n ~budget:0 ~inputs
             ~max_rounds:254 ~seed:s
         in
         (result, Properties.broadcast ~sender:0 ~input:true result)));
  (* Broadcast with an equivocating corrupt sender: consistency must hold
     anyway (validity is vacuous). *)
  add "Broadcast, equivocating sender"
    (Common.measure ~reps ~seed (fun s ->
         let bb =
           Broadcast.of_ba (Sub_hm.protocol ~params ~world:`Hybrid) ~sender:0
         in
         let inputs = Array.make n true in
         let result =
           Engine.run bb
             ~adversary:(equivocating_sender ~sender:0 ())
             ~n ~budget:1 ~inputs ~max_rounds:254 ~seed:s
         in
         (result, Properties.broadcast ~sender:0 ~input:true result)));
  Bastats.Table.add_note table
    "the reduction adds one multicast and one round; a corrupt sender can \
     split the BA inputs but not the BA outputs — which is why the paper \
     states upper bounds for BA and lower bounds for Broadcast and loses \
     nothing.";
  [ table ]
