open Basim
open Bacore

let sub_hm_row table ~reps ~seed ~n ~budget ~adversary ~label ~max_epochs =
  let params = Params.make ~lambda:20 ~max_epochs () in
  let proto = Sub_hm.protocol ~params ~world:`Hybrid in
  let rates =
    Common.measure ~reps ~seed (fun s ->
        let inputs = Scenario.unanimous_inputs ~n true in
        let result =
          Engine.run proto ~adversary:(adversary ()) ~n ~budget ~inputs
            ~max_rounds:((4 * max_epochs) + 10) ~seed:s
        in
        (result, Properties.agreement ~inputs result))
  in
  let bound = (0.5 *. float_of_int budget /. 2.0) ** 2.0 in
  Bastats.Table.add_row table
    [ label;
      string_of_int n;
      string_of_int budget;
      Common.rate rates.Common.termination_fail rates.Common.trials;
      Common.rate rates.Common.consistency_fail rates.Common.trials;
      Bastats.Table.fmt_float (Common.mean_multicasts rates);
      Bastats.Table.fmt_float (Common.mean_removals rates);
      Bastats.Table.fmt_float bound ]

let comparator_row table ~reps ~seed ~label ~run_one =
  let rates = Common.measure ~reps ~seed run_one in
  Bastats.Table.add_row table
    [ label;
      "-";
      "-";
      Common.rate rates.Common.termination_fail rates.Common.trials;
      Common.rate rates.Common.consistency_fail rates.Common.trials;
      Bastats.Table.fmt_float (Common.mean_multicasts rates);
      Bastats.Table.fmt_float (Common.mean_removals rates);
      "-" ]

let run ?(reps = 10) ?(seed = 101L) () =
  let table =
    Bastats.Table.create
      ~title:
        "E1 (Thm 1/4): strongly adaptive eraser — subquadratic BA dies, \
         quadratic survives"
      ~columns:
        [ "protocol/adversary"; "n"; "budget f"; "non-term"; "inconsist";
          "multicasts"; "erased"; "(f/4)^2" ]
  in
  (* Budget sweep against the subquadratic protocol. *)
  List.iter
    (fun budget ->
      sub_hm_row table ~reps ~seed ~n:401 ~budget ~adversary:Baattacks.Eraser.make
        ~label:"sub-hm + eraser" ~max_epochs:5)
    [ 0; 40; 80; 120; 150 ];
  (* Control: merely adaptive corruption of the same speakers. *)
  sub_hm_row table ~reps ~seed ~n:401 ~budget:150
    ~adversary:Baattacks.Eraser.silencer
    ~label:"sub-hm + silencer (no removal)" ~max_epochs:12;
  (* Quadratic honest-majority BA under the eraser at full budget f. *)
  comparator_row table ~reps ~seed ~label:"quadratic-hm + eraser (f = n/2)"
    ~run_one:(fun s ->
      let proto = Quadratic_hm.protocol () in
      let inputs = Scenario.unanimous_inputs ~n:101 true in
      let result =
        Engine.run proto ~adversary:(Baattacks.Eraser.make ()) ~n:101 ~budget:50 ~inputs
          ~max_rounds:200 ~seed:s
      in
      (result, Properties.agreement ~inputs result));
  (* Dolev–Strong under the eraser: worst case a consistent default. *)
  comparator_row table ~reps ~seed ~label:"dolev-strong + eraser (f = n/3)"
    ~run_one:(fun s ->
      let proto = Babaselines.Dolev_strong.protocol ~sender:0 ~f:10 in
      let inputs = Array.make 31 true in
      let result =
        Engine.run proto ~adversary:(Baattacks.Eraser.make ()) ~n:31 ~budget:10 ~inputs
          ~max_rounds:14 ~seed:s
      in
      (result, Properties.broadcast ~sender:0 ~input:true result));
  Bastats.Table.add_note table
    "sub-hm dies as soon as the budget covers its O(poly log) speakers — far \
     below the (εf/2)² message bound a strongly-adaptively-secure protocol \
     must pay (Theorem 4).";
  Bastats.Table.add_note table
    "the silencer control shows corruption alone is harmless: it is the \
     after-the-fact removal that kills subquadratic protocols.";
  [ table ]
