open Basim

let run ?(reps = 5) ?(seed = 102L) () =
  let n = 41 in
  let budget = 20 in
  (* n = 2f+1 with f = 20 *)
  let table =
    Bastats.Table.create
      ~title:
        "E1b (Dolev-Reischuk): isolating one node of a d-redundant relay \
         with f = 20 corruptions (n = 41)"
      ~columns:
        [ "redundancy d"; "honest msgs"; "corruptions"; "attack breaks \
           consistency"; "msgs needed if safe (n*d)" ]
  in
  List.iter
    (fun d ->
      let rates =
        Common.measure ~reps ~seed (fun s ->
            let proto = Babaselines.Sparse_relay.protocol ~d in
            let inputs = Array.make n true in
            let result =
              Engine.run proto
                ~adversary:(Baattacks.Dolev_reischuk.make ~victim:(n - 1) ())
                ~n ~budget ~inputs ~max_rounds:(n + 5) ~seed:s
            in
            (result, Properties.broadcast ~sender:0 ~input:true result))
      in
      Bastats.Table.add_row table
        [ string_of_int d;
          Bastats.Table.fmt_float (Common.mean_unicasts rates);
          Bastats.Table.fmt_float (Common.mean_corruptions rates);
          Common.rate rates.Common.consistency_fail rates.Common.trials;
          string_of_int (n * d) ])
    [ 1; 2; 4; 8; 16; 20; 21; 24 ];
  Bastats.Table.add_note table
    "the attack wins exactly while d <= f = 20; the first safe redundancy \
     d = 21 costs n*d = 861 > (f/2)^2 = 100 messages — the Omega(f^2) shape \
     (Theorem 4 / Dolev-Reischuk).";
  [ table ]
