open Basim
open Bacore

type row = {
  conflict_trials : int;
  mean_conflicts : float;
  inconsistent : int;
  trials : int;
}

let attack_run ~mode ~inputs_of ~n ~budget ~reps ~seed =
  let params = Params.make ~lambda:20 ~max_epochs:5 () in
  let proto = Sub_third.protocol ~params ~world:`Hybrid ~mode in
  let outcomes =
    List.init reps (fun k ->
        let s = Common.seed_of seed k in
        let inputs = inputs_of s in
        let env, result =
          Engine.run_env proto
            ~adversary:(Baattacks.Equivocator.make ())
            ~n ~budget ~inputs ~max_rounds:14 ~seed:s
        in
        (Atomic.get env.Sub_third.conflicts, Properties.agreement ~inputs result))
  in
  { conflict_trials = List.length (List.filter (fun (c, _) -> c > 0) outcomes);
    mean_conflicts =
      List.fold_left (fun acc (c, _) -> acc +. float_of_int c) 0.0 outcomes
      /. float_of_int reps;
    inconsistent =
      List.length
        (List.filter (fun (_, v) -> not v.Properties.consistent) outcomes);
    trials = reps }

let run ?(reps = 10) ?(seed = 106L) () =
  let table =
    Bastats.Table.create
      ~title:
        "E5 (§3.3 Remark): the equivocator vs bit-specific and bit-agnostic \
         eligibility (n = 360, λ = 20, 5 epochs)"
      ~columns:
        [ "eligibility"; "inputs"; "trials w/ ample-ACKs-both-bits";
          "mean conflict events"; "inconsistent outputs" ]
  in
  let add label mode inputs_label inputs_of =
    let r = attack_run ~mode ~inputs_of ~n:360 ~budget:110 ~reps ~seed in
    Bastats.Table.add_row table
      [ label;
        inputs_label;
        Common.rate r.conflict_trials r.trials;
        Bastats.Table.fmt_float r.mean_conflicts;
        Common.rate r.inconsistent r.trials ]
  in
  add "bit-agnostic (broken)" Sub_third.Bit_agnostic "unanimous" (fun _ ->
      Scenario.unanimous_inputs ~n:360 true);
  add "bit-specific (paper)" Sub_third.Bit_specific "unanimous" (fun _ ->
      Scenario.unanimous_inputs ~n:360 true);
  add "bit-agnostic (broken)" Sub_third.Bit_agnostic "split" (fun _ ->
      Scenario.split_inputs ~n:360);
  add "bit-specific (paper)" Sub_third.Bit_specific "split" (fun _ ->
      Scenario.split_inputs ~n:360);
  Bastats.Table.add_note table
    "the identical adversary: with bit-agnostic tickets the revealed \
     credential replays onto the opposite bit and every committee is \
     mirrored; with bit-specific tickets the replay fails and corruption \
     buys nothing (the paper's key insight, §3.2).";
  [ table ]
