open Basim
open Bacore

let n = 360

let budget = 110

let params () = Params.make ~lambda:20 ~max_epochs:5 ()

type row = { conflict_trials : int; inconsistent : int; trials : int }

let cm_run ~erasure ~reps ~seed =
  let proto = Babaselines.Chen_micali.protocol ~params:(params ()) ~erasure in
  let outcomes =
    List.init reps (fun k ->
        let s = Common.seed_of seed k in
        let inputs = Scenario.split_inputs ~n in
        let env, result =
          Engine.run_env proto
            ~adversary:(Baattacks.Cm_equivocator.make ())
            ~n ~budget ~inputs ~max_rounds:14 ~seed:s
        in
        ( Atomic.get env.Babaselines.Chen_micali.conflicts,
          Properties.agreement ~inputs result ))
  in
  { conflict_trials = List.length (List.filter (fun (c, _) -> c > 0) outcomes);
    inconsistent =
      List.length
        (List.filter (fun (_, v) -> not v.Properties.consistent) outcomes);
    trials = reps }

let bit_specific_run ~reps ~seed =
  let proto =
    Sub_third.protocol ~params:(params ()) ~world:`Hybrid
      ~mode:Sub_third.Bit_specific
  in
  let outcomes =
    List.init reps (fun k ->
        let s = Common.seed_of seed k in
        let inputs = Scenario.split_inputs ~n in
        let env, result =
          Engine.run_env proto
            ~adversary:(Baattacks.Equivocator.make ())
            ~n ~budget ~inputs ~max_rounds:14 ~seed:s
        in
        (Atomic.get env.Sub_third.conflicts, Properties.agreement ~inputs result))
  in
  { conflict_trials = List.length (List.filter (fun (c, _) -> c > 0) outcomes);
    inconsistent =
      List.length
        (List.filter (fun (_, v) -> not v.Properties.consistent) outcomes);
    trials = reps }

let run ?(reps = 10) ?(seed = 111L) () =
  let table =
    Bastats.Table.create
      ~title:
        (Printf.sprintf
           "E5b (§3.2): what assumption protects the vote? (n = %d, λ = 20, \
            split inputs, equivocating adversary)"
           n)
      ~columns:
        [ "design"; "assumption"; "ample-both-bits trials"; "inconsistent \
           outputs" ]
  in
  let add label assumption r =
    Bastats.Table.add_row table
      [ label;
        assumption;
        Common.rate r.conflict_trials r.trials;
        Common.rate r.inconsistent r.trials ]
  in
  add "Chen-Micali (ephemeral keys)" "memory erasure"
    (cm_run ~erasure:true ~reps ~seed);
  add "Chen-Micali, erasure disabled" "(assumption dropped)"
    (cm_run ~erasure:false ~reps ~seed);
  add "bit-specific eligibility (paper)" "none" (bit_specific_run ~reps ~seed);
  Bastats.Table.add_note table
    "all three face the same corrupt-the-ACKer-and-mirror attack: \
     Chen-Micali survives only while nodes can erase ephemeral keys before \
     the adversary arrives; the paper's bit-specific tickets need no such \
     model assumption — that is Theorem 2's 'minimal assumptions' claim.";
  [ table ]
