(* Aggregation is a monoid fold so trials can run on Bapar domains:
   [rates] carries integer sums (exact, so merging is genuinely
   associative and commutative — float accumulation would not be), and
   the means every table prints are derived at read time. The pool
   merges per-trial singletons in trial-index order, which makes every
   aggregate a pure function of (seed, reps) — independent of [jobs]. *)

type rates = {
  trials : int;
  consistency_fail : int;
  validity_fail : int;
  termination_fail : int;
  total_rounds : int;
  total_multicasts : int;
  total_multicast_bits : int;
  total_unicasts : int;
  total_removals : int;
  total_corruptions : int;
}

let empty_rates =
  { trials = 0;
    consistency_fail = 0;
    validity_fail = 0;
    termination_fail = 0;
    total_rounds = 0;
    total_multicasts = 0;
    total_multicast_bits = 0;
    total_unicasts = 0;
    total_removals = 0;
    total_corruptions = 0 }

let rates_of_trial (r, v) =
  let fail b = if b then 0 else 1 in
  { trials = 1;
    consistency_fail = fail v.Basim.Properties.consistent;
    validity_fail = fail v.Basim.Properties.valid;
    termination_fail = fail v.Basim.Properties.terminated;
    total_rounds = r.Basim.Engine.rounds_used;
    total_multicasts = Basim.Metrics.honest_multicasts r.Basim.Engine.metrics;
    total_multicast_bits =
      Basim.Metrics.honest_multicast_bits r.Basim.Engine.metrics;
    total_unicasts = Basim.Metrics.honest_unicasts r.Basim.Engine.metrics;
    total_removals = Basim.Metrics.removals r.Basim.Engine.metrics;
    total_corruptions = r.Basim.Engine.corruptions }

let merge_rates a b =
  { trials = a.trials + b.trials;
    consistency_fail = a.consistency_fail + b.consistency_fail;
    validity_fail = a.validity_fail + b.validity_fail;
    termination_fail = a.termination_fail + b.termination_fail;
    total_rounds = a.total_rounds + b.total_rounds;
    total_multicasts = a.total_multicasts + b.total_multicasts;
    total_multicast_bits = a.total_multicast_bits + b.total_multicast_bits;
    total_unicasts = a.total_unicasts + b.total_unicasts;
    total_removals = a.total_removals + b.total_removals;
    total_corruptions = a.total_corruptions + b.total_corruptions }

let mean total r =
  if r.trials = 0 then 0.0 else float_of_int total /. float_of_int r.trials

let mean_rounds r = mean r.total_rounds r

let mean_multicasts r = mean r.total_multicasts r

let mean_multicast_bits r = mean r.total_multicast_bits r

let mean_unicasts r = mean r.total_unicasts r

let mean_removals r = mean r.total_removals r

let mean_corruptions r = mean r.total_corruptions r

let seed_of base k =
  Bacrypto.Rng.next_int64
    (Bacrypto.Rng.split_named (Bacrypto.Rng.create base) (string_of_int k))

(* {2 Trial parallelism}

   One process-wide jobs setting (wired to the [--jobs] flags and the
   BA_JOBS env knob via [Bapar.Pool.default_jobs]) and one cached pool
   matching it. [measure] is only ever called from the driver domain —
   experiments run one after another — so plain refs suffice here; the
   trials themselves are what run on domains. *)

let jobs_setting = ref (Bapar.Pool.default_jobs ())

let cached_pool : Bapar.Pool.t option ref = ref None

let drop_pool () =
  match !cached_pool with
  | None -> ()
  | Some p ->
      cached_pool := None;
      Bapar.Pool.shutdown p

let set_jobs j =
  let j = max 1 j in
  if j <> !jobs_setting then begin
    drop_pool ();
    jobs_setting := j
  end

let jobs () = !jobs_setting

let current_pool () =
  match !cached_pool with
  | Some p when Bapar.Pool.size p = !jobs_setting -> p
  | Some _ | None ->
      drop_pool ();
      let p = Bapar.Pool.create ~jobs:!jobs_setting in
      cached_pool := Some p;
      p

let measure ?jobs:requested ~reps ~seed f =
  let thunks =
    List.init reps (fun k () -> rates_of_trial (f (seed_of seed k)))
  in
  let reduce pool =
    Bapar.Pool.map_reduce ~pool ~merge:merge_rates ~init:empty_rates thunks
  in
  match requested with
  | Some j when j <> !jobs_setting -> Bapar.Pool.with_pool ~jobs:j reduce
  | Some _ | None -> reduce (current_pool ())

let pct p = Printf.sprintf "%.1f%%" (100.0 *. p)

let rate k n =
  Printf.sprintf "%d/%d (%s)" k n (pct (float_of_int k /. float_of_int n))

let rates_to_json r =
  let open Baobs.Json in
  Obj
    [ ("trials", Int r.trials);
      ("consistency_fail", Int r.consistency_fail);
      ("validity_fail", Int r.validity_fail);
      ("termination_fail", Int r.termination_fail);
      ("mean_rounds", Float (mean_rounds r));
      ("mean_multicasts", Float (mean_multicasts r));
      ("mean_multicast_bits", Float (mean_multicast_bits r));
      ("mean_unicasts", Float (mean_unicasts r));
      ("mean_removals", Float (mean_removals r));
      ("mean_corruptions", Float (mean_corruptions r)) ]
