type rates = {
  trials : int;
  consistency_fail : int;
  validity_fail : int;
  termination_fail : int;
  mean_rounds : float;
  mean_multicasts : float;
  mean_multicast_bits : float;
  mean_unicasts : float;
  mean_removals : float;
  mean_corruptions : float;
}

let seed_of base k =
  Bacrypto.Rng.next_int64
    (Bacrypto.Rng.split_named (Bacrypto.Rng.create base) (string_of_int k))

let measure ~reps ~seed f =
  let results = List.init reps (fun k -> f (seed_of seed k)) in
  let count p = List.length (List.filter p results) in
  let meanf g =
    List.fold_left (fun acc r -> acc +. g r) 0.0 results /. float_of_int reps
  in
  { trials = reps;
    consistency_fail = count (fun (_, v) -> not v.Basim.Properties.consistent);
    validity_fail = count (fun (_, v) -> not v.Basim.Properties.valid);
    termination_fail = count (fun (_, v) -> not v.Basim.Properties.terminated);
    mean_rounds = meanf (fun (r, _) -> float_of_int r.Basim.Engine.rounds_used);
    mean_multicasts =
      meanf (fun (r, _) ->
          float_of_int (Basim.Metrics.honest_multicasts r.Basim.Engine.metrics));
    mean_multicast_bits =
      meanf (fun (r, _) ->
          float_of_int
            (Basim.Metrics.honest_multicast_bits r.Basim.Engine.metrics));
    mean_unicasts =
      meanf (fun (r, _) ->
          float_of_int (Basim.Metrics.honest_unicasts r.Basim.Engine.metrics));
    mean_removals =
      meanf (fun (r, _) ->
          float_of_int (Basim.Metrics.removals r.Basim.Engine.metrics));
    mean_corruptions =
      meanf (fun (r, _) -> float_of_int r.Basim.Engine.corruptions) }

let pct p = Printf.sprintf "%.1f%%" (100.0 *. p)

let rate k n =
  Printf.sprintf "%d/%d (%s)" k n (pct (float_of_int k /. float_of_int n))

let rates_to_json r =
  let open Baobs.Json in
  Obj
    [ ("trials", Int r.trials);
      ("consistency_fail", Int r.consistency_fail);
      ("validity_fail", Int r.validity_fail);
      ("termination_fail", Int r.termination_fail);
      ("mean_rounds", Float r.mean_rounds);
      ("mean_multicasts", Float r.mean_multicasts);
      ("mean_multicast_bits", Float r.mean_multicast_bits);
      ("mean_unicasts", Float r.mean_unicasts);
      ("mean_removals", Float r.mean_removals);
      ("mean_corruptions", Float r.mean_corruptions) ]
