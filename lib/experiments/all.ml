type entry = {
  id : string;
  claim : string;
  run : ?reps:int -> ?seed:int64 -> unit -> Bastats.Table.t list;
}

let experiments =
  [ { id = "E1";
      claim =
        "Thm 1/4: strongly adaptive (after-the-fact removal) forces Ω(f²) \
         communication";
      run = E1_strong_adaptive.run };
    { id = "E1b";
      claim = "Dolev-Reischuk isolation on a deterministic sparse relay";
      run = E1b_dolev_reischuk.run };
    { id = "E2";
      claim = "Thm 2: polylog multicast complexity, flat in n";
      run = E2_multicast_scaling.run };
    { id = "E3";
      claim = "Cor 16: expected O(1) rounds vs Nakamoto's linear confirmation";
      run = E3_round_complexity.run };
    { id = "E4";
      claim = "resilience thresholds: n/3 (§3) vs (1-ε)n/2 (App. C)";
      run = E4_resilience.run };
    { id = "E5";
      claim = "§3.3 Remark: bit-specific eligibility is necessary";
      run = E5_bit_specific.run };
    { id = "E5b";
      claim = "§3.2: Chen-Micali needs memory erasure; bit-specific tickets don't";
      run = E5b_memory_erasure.run };
    { id = "E6";
      claim = "Thm 3: no sublinear multicast BA without setup";
      run = E6_setup_necessity.run };
    { id = "E7";
      claim = "Lemmas 10-12: committees, good iterations, terminate cascade";
      run = E7_stochastic_lemmas.run };
    { id = "E8";
      claim = "§1: public committees die under adaptive corruption";
      run = E8_takeover.run };
    { id = "E9";
      claim = "App. D/E: the Fmine compiler preserves behaviour";
      run = E9_compiler.run };
    { id = "E10";
      claim = "§1.1: Broadcast from BA preserves communication efficiency";
      run = E10_broadcast.run };
    { id = "E11";
      claim = "Lemmas 10-15: failure rates decay as exp(-Ω(ε²λ))";
      run = E11_lambda_decay.run } ]

let print_entry ?quick entry =
  Printf.printf "\n### %s — %s\n\n" entry.id entry.claim;
  let tables =
    match quick with
    | Some true -> entry.run ~reps:3 ()
    | Some false | None -> entry.run ()
  in
  List.iter
    (fun t ->
      Bastats.Table.print t;
      print_newline ())
    tables;
  tables

let table_to_json t =
  let open Baobs.Json in
  let strings l = List (List.map (fun s -> String s) l) in
  Obj
    [ ("title", String (Bastats.Table.title t));
      ("columns", strings (Bastats.Table.columns t));
      ( "rows",
        List (List.map strings (Bastats.Table.rows t)) );
      ("notes", strings (Bastats.Table.notes t)) ]

let suite_json ~quick entries =
  Baobs.Json.Obj
    [ ("suite", Baobs.Json.String "ba-revisited-experiments");
      ("quick", Baobs.Json.Bool quick);
      ( "experiments",
        Baobs.Json.List
          (List.map
             (fun (entry, tables) ->
               Baobs.Json.Obj
                 [ ("id", Baobs.Json.String entry.id);
                   ("claim", Baobs.Json.String entry.claim);
                   ("tables", Baobs.Json.List (List.map table_to_json tables)) ])
             entries) ) ]

let write_json path json =
  let oc = open_out path in
  output_string oc (Baobs.Json.to_string json);
  output_char oc '\n';
  close_out oc

let run_all ?(quick = false) ?jobs ?json_path () =
  Option.iter Common.set_jobs jobs;
  print_endline
    "Communication Complexity of Byzantine Agreement, Revisited — experiment \
     suite";
  let entries =
    List.map (fun entry -> (entry, print_entry ~quick entry)) experiments
  in
  match json_path with
  | Some path -> write_json path (suite_json ~quick entries)
  | None -> ()

let run_one ?(quick = false) ?jobs ?json_path id =
  Option.iter Common.set_jobs jobs;
  let target = String.lowercase_ascii id in
  match
    List.find_opt
      (fun e -> String.lowercase_ascii e.id = target)
      experiments
  with
  | Some entry ->
      let tables = print_entry ~quick entry in
      (match json_path with
      | Some path -> write_json path (suite_json ~quick [ (entry, tables) ])
      | None -> ());
      true
  | None -> false
