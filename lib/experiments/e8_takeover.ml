open Basim
open Bacore

let run ?(reps = 10) ?(seed = 109L) () =
  let n = 200 and committee = 12 and budget = 24 in
  let table =
    Bastats.Table.create
      ~title:
        (Printf.sprintf
           "E8 (§1): adaptive takeover of a public committee (n = %d, \
            committee = %d, budget = %d)"
           n committee budget)
      ~columns:
        [ "protocol"; "validity fail"; "consistency fail"; "corruptions used" ]
  in
  let static =
    Common.measure ~reps ~seed (fun s ->
        let proto = Babaselines.Static_committee.protocol ~committee_size:committee in
        let inputs = Scenario.unanimous_inputs ~n false in
        let result =
          Engine.run proto
            ~adversary:(Baattacks.Takeover.make ~force:true ())
            ~n ~budget ~inputs ~max_rounds:6 ~seed:s
        in
        (result, Properties.agreement ~inputs result))
  in
  Bastats.Table.add_row table
    [ "static-committee + takeover";
      Common.rate static.Common.validity_fail static.Common.trials;
      Common.rate static.Common.consistency_fail static.Common.trials;
      Bastats.Table.fmt_float (Common.mean_corruptions static) ];
  let shm =
    Common.measure ~reps ~seed (fun s ->
        let params = Params.make ~lambda:30 ~max_epochs:40 () in
        let proto = Sub_hm.protocol ~params ~world:`Hybrid in
        let inputs = Scenario.unanimous_inputs ~n false in
        let result =
          Engine.run proto
            ~adversary:(Baattacks.Split_vote.sub_hm ())
            ~n ~budget ~inputs ~max_rounds:170 ~seed:s
        in
        (result, Properties.agreement ~inputs result))
  in
  Bastats.Table.add_row table
    [ "sub-hm + same budget";
      Common.rate shm.Common.validity_fail shm.Common.trials;
      Common.rate shm.Common.consistency_fail shm.Common.trials;
      Bastats.Table.fmt_float (Common.mean_corruptions shm) ];
  Bastats.Table.add_note table
    "the takeover reads the public CRS committee and corrupts it before its \
     Result round; sub-hm's committees are secret until they speak and \
     bit-specific afterwards, so the same budget is useless.";
  [ table ]
