(** The full experiment suite. [run_all] executes E1–E9 (and E1b) in
    order, printing each table — the output recorded in EXPERIMENTS.md.
    [quick] runs the same experiments with reduced repetitions for smoke
    testing. *)

type entry = {
  id : string;       (** "E1", "E1b", … *)
  claim : string;    (** the paper claim it regenerates *)
  run : ?reps:int -> ?seed:int64 -> unit -> Bastats.Table.t list;
}

val experiments : entry list
(** All experiments in presentation order. *)

val table_to_json : Bastats.Table.t -> Baobs.Json.t

val run_all : ?quick:bool -> ?jobs:int -> ?json_path:string -> unit -> unit
(** Execute and print every experiment. [quick] (default false) divides
    repetition counts for fast smoke runs. [jobs], when given, sets the
    trial parallelism for the whole suite ({!Common.set_jobs}); every
    printed number and the JSON document are identical for every [jobs]
    value. [json_path], when given, additionally writes every table as
    one machine-readable JSON document
    ([{suite; quick; experiments: [{id; claim; tables}]}]). *)

val run_one : ?quick:bool -> ?jobs:int -> ?json_path:string -> string -> bool
(** [run_one id] executes just the experiment named [id] (case
    insensitive); returns [false] if no such experiment exists. *)
