open Basim
open Bacore

let passive () = Engine.passive ~name:"passive" ~model:Corruption.Adaptive

(* Protocol records whose environments share one PKI, with the two coupled
   eligibility oracles of Compiler.paired. *)
let coupled_protocols ~params ~n ~pki_seed =
  let pki = Bacrypto.Pki.setup ~n (Bacrypto.Rng.create pki_seed) in
  let hybrid_elig, real_elig = Bafmine.Compiler.paired pki in
  let base = Sub_hm.protocol ~params ~world:`Hybrid in
  let with_env elig pki_opt =
    { base with
      Engine.make_env =
        (fun ~n:n' _rng ->
          { Sub_hm.n = n';
            params;
            elig;
            pki = pki_opt;
            fmine = None;
            cert_cache = Hashtbl.create 256;
            proposal_cache = Hashtbl.create 64;
            cache_lock = Mutex.create () }) }
  in
  (with_env hybrid_elig None, with_env real_elig (Some pki))

let run ?(reps = 5) ?(seed = 110L) () =
  let n = 61 in
  let params = Params.make ~lambda:24 ~max_epochs:40 () in
  let table =
    Bastats.Table.create
      ~title:
        (Printf.sprintf
           "E9 (App. D/E): Fmine-hybrid vs compiled real world over one PKI \
            (n = %d, λ = 24, paired lotteries, same seeds)"
           n)
      ~columns:
        [ "trial"; "same output"; "same rounds"; "same multicasts";
          "hybrid kbits"; "real kbits"; "proof overhead" ]
  in
  let identical = ref 0 in
  for k = 0 to reps - 1 do
    let s = Common.seed_of seed k in
    let hybrid, real =
      coupled_protocols ~params ~n ~pki_seed:(Common.seed_of seed (1000 + k))
    in
    let inputs = Scenario.random_inputs ~n s in
    let run_world proto =
      Engine.run proto ~adversary:(passive ()) ~n ~budget:0 ~inputs
        ~max_rounds:170 ~seed:s
    in
    let rh = run_world hybrid and rr = run_world real in
    let same_output = rh.Engine.outputs = rr.Engine.outputs in
    let same_rounds = rh.Engine.rounds_used = rr.Engine.rounds_used in
    let mh = Metrics.honest_multicasts rh.Engine.metrics in
    let mr = Metrics.honest_multicasts rr.Engine.metrics in
    let bh = Metrics.honest_multicast_bits rh.Engine.metrics in
    let br = Metrics.honest_multicast_bits rr.Engine.metrics in
    if same_output && same_rounds && mh = mr then incr identical;
    Bastats.Table.add_row table
      [ string_of_int (k + 1);
        string_of_bool same_output;
        string_of_bool same_rounds;
        Printf.sprintf "%b (%d vs %d)" (mh = mr) mh mr;
        Bastats.Table.fmt_float (float_of_int bh /. 1000.0);
        Bastats.Table.fmt_float (float_of_int br /. 1000.0);
        Printf.sprintf "%.1fx" (float_of_int br /. float_of_int (max 1 bh)) ]
  done;
  Bastats.Table.add_note table
    (Printf.sprintf
       "%d/%d paired executions fully transcript-equivalent: the Appendix-D \
        compiler changes only the credential bytes on the wire, never the \
        elections or the decision."
       !identical reps);
  [ table ]
